// Package walorder implements the segdifflint analyzer enforcing the
// engine's write-ahead ordering conventions.
//
// The engine runs a no-steal buffer pool: a page marked dirty may only
// reach the data file after its after-image has been appended to the WAL
// (Pager.LogDirty staging into Log.Stage/Log.Commit). A flush that
// overtakes the WAL append breaks crash recovery — after a crash the data
// file holds a page the log knows nothing about, and replay cannot undo
// or redo it. The analyzer tracks a may-dirty dataflow fact ("a page has
// been marked dirty and not yet WAL-appended") through each function's
// CFG and across calls via bottom-up summaries, and reports any flush
// primitive (Pager.Flush, Pager.Sync, Pager.DropCache, Pager.Close)
// reachable while the fact holds — whether the mark, the append, and the
// flush sit in the same function or three functions apart.
//
// The companion latchorder analyzer enforces the engine's two other
// ordering conventions (ascending latch acquisition, sorted durable
// writes); walorder exports its WritesFile summaries for it.
package walorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/callgraph"
	"segdiff/internal/analysis/cfg"
	"segdiff/internal/analysis/dataflow"
)

// Analyzer is the walorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:        "walorder",
	Doc:         "dirty pages must be WAL-appended before any path flushes them (no-steal rule), tracked across calls",
	Run:         run,
	ModuleFacts: moduleFacts,
}

// summary is the bottom-up dataflow fact for one function: how it
// transforms the may-dirty state and whether it violates the ordering
// internally, for each entry state.
type summary struct {
	OutClean   bool // exit state may-dirty when entered clean
	OutDirty   bool // exit state may-dirty when entered may-dirty
	ViolClean  bool // flushes past an unlogged mark even when entered clean
	ViolDirty  bool // flushes past an unlogged mark when entered may-dirty
	WritesFile bool // performs a durable write (flush primitive) anywhere
}

// facts is the module-wide fact set.
type facts struct {
	graph     *callgraph.Graph
	summaries map[*types.Func]summary
}

// primitive classification.
type primKind int

const (
	primNone primKind = iota
	primMark
	primAppend
	primFlush
)

// prims maps receiver-type-name.method to its role in the ordering. The
// names match the engine's pager and wal APIs; fixtures declare types
// with the same names.
var prims = map[[2]string]primKind{
	{"Page", "MarkDirty"}:  primMark,
	{"Pager", "Allocate"}:  primMark, // a fresh page is born dirty
	{"Pager", "LogDirty"}:  primAppend,
	{"Log", "Stage"}:       primAppend,
	{"Log", "AppendPage"}:  primAppend,
	{"Log", "Commit"}:      primAppend,
	{"Pager", "Flush"}:     primFlush,
	{"Pager", "Sync"}:      primFlush,
	{"Pager", "DropCache"}: primFlush,
	{"Pager", "Close"}:     primFlush,
}

// classify returns the primitive role of a call, or primNone.
func classify(info *types.Info, call *ast.CallExpr) primKind {
	fn := analysis.MethodOf(info, call)
	if fn == nil {
		return primNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return primNone
	}
	return prims[[2]string{analysis.ReceiverTypeName(sig.Recv().Type()), fn.Name()}]
}

func moduleFacts(mod *analysis.Module) (any, error) {
	g := callgraph.Build(mod)
	fs := &facts{graph: g, summaries: map[*types.Func]summary{}}
	raw := dataflow.Summaries(g, func(n *callgraph.Node, get dataflow.Getter) any {
		getSum := func(fn *types.Func) (summary, bool) {
			s, ok := get(fn).(summary)
			return s, ok
		}
		clean := analyzeFn(n, getSum, false, nil)
		dirty := analyzeFn(n, getSum, true, nil)
		return summary{
			OutClean:   clean.out,
			OutDirty:   dirty.out,
			ViolClean:  clean.viol,
			ViolDirty:  dirty.viol,
			WritesFile: clean.writes,
		}
	})
	for fn, s := range raw {
		if sum, ok := s.(summary); ok {
			fs.summaries[fn] = sum
		}
	}
	return fs, nil
}

// getter looks a callee's summary up, false when unknown (external or
// unresolved callees are treated as no-ops).
type getter func(fn *types.Func) (summary, bool)

// fnResult is the outcome of walking one function under one entry state.
type fnResult struct {
	out    bool // may-dirty at exit
	viol   bool // a flush happened while may-dirty
	writes bool // any durable-write primitive or callee anywhere
}

// report receives a violation site during the reporting walk.
type reportFn func(pos token.Pos, callee *types.Func)

// analyzeFn runs the may-dirty dataflow over one function body with the
// given entry state. When report is non-nil, each flush-while-dirty site
// is passed to it (callee nil for a primitive flush, non-nil when the
// violation is inside a summarized callee entered dirty).
func analyzeFn(n *callgraph.Node, get getter, entry bool, report reportFn) fnResult {
	res := fnResult{out: entry}
	if n.Decl == nil || n.Decl.Body == nil {
		return res
	}
	g := cfg.New(n.Decl.Body)
	if g.HasGoto {
		return res
	}
	info := n.Pkg.Info

	// effect folds the calls syntactically inside one statement, in
	// source order, into the state; side flags accumulate in res.
	effect := func(state bool, s ast.Stmt, reporting bool) bool {
		for _, call := range callsIn(s) {
			switch classify(info, call) {
			case primMark:
				state = true
			case primAppend:
				state = false
			case primFlush:
				res.writes = true
				if state {
					res.viol = true
					if reporting && report != nil {
						report(call.Pos(), nil)
					}
				}
				state = false // the flush wrote everything out
			default:
				fn := callgraph.Callee(info, call)
				if fn == nil {
					continue
				}
				sum, ok := get(fn)
				if !ok {
					continue
				}
				res.writes = res.writes || sum.WritesFile
				if state && sum.ViolDirty {
					res.viol = true
					// Report at the call site only when the callee is
					// clean on its own: otherwise the callee's defining
					// function already carries the report.
					if reporting && report != nil && !sum.ViolClean {
						report(call.Pos(), fn)
					}
				}
				if state {
					state = sum.OutDirty
				} else {
					state = sum.OutClean
				}
			}
		}
		return state
	}

	in := dataflow.Forward(g, entry,
		func(a, b bool) bool { return a || b },
		func(state bool, s ast.Stmt) bool { return effect(state, s, false) })

	// Deterministic reporting walk over the reachable blocks, replaying
	// each block from its joined in-state.
	res.viol = false
	for _, b := range g.Blocks {
		state, reachable := in[b]
		if !reachable {
			continue
		}
		for _, s := range b.Nodes {
			state = effect(state, s, true)
		}
	}
	res.out = in[g.Exit]
	return res
}

// callsIn returns the call expressions syntactically inside s, in source
// order. Function literals are treated as executing inline — the engine
// only uses literals as immediately-invoked staging closures on the
// commit path — but a RangeStmt node (which the CFG stores whole in its
// loop-head block) contributes only its range expression, since its body
// statements live in other blocks.
func callsIn(s ast.Stmt) []*ast.CallExpr {
	var root ast.Node = s
	if rs, ok := s.(*ast.RangeStmt); ok {
		if rs.X == nil {
			return nil
		}
		root = rs.X
	}
	var out []*ast.CallExpr
	ast.Inspect(root, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			out = append(out, call)
		}
		return true
	})
	return out
}

func run(pass *analysis.Pass) error {
	fs, ok := pass.ModuleFacts.(*facts)
	if !ok {
		return fmt.Errorf("walorder: missing module facts")
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkOrdering(pass, fs, fd)
		}
	}
	return nil
}

// WritesDurably reports whether fn's summary says it performs a durable
// write (a flush primitive, directly or transitively). The latchorder
// analyzer uses this to spot durable writes ordered by map iteration.
func WritesDurably(moduleFacts any, fn *types.Func) bool {
	fs, ok := moduleFacts.(*facts)
	if !ok || fn == nil {
		return false
	}
	return fs.summaries[fn].WritesFile
}

// IsFlushPrimitive reports whether the call is one of the engine's flush
// primitives (Pager.Flush/Sync/DropCache/Close).
func IsFlushPrimitive(info *types.Info, call *ast.CallExpr) bool {
	return classify(info, call) == primFlush
}

// checkOrdering reports flush-while-dirty sites in fd, entered clean.
func checkOrdering(pass *analysis.Pass, fs *facts, fd *ast.FuncDecl) {
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	n := fs.graph.NodeOf(fn)
	if n == nil {
		return
	}
	get := func(f *types.Func) (summary, bool) {
		s, ok := fs.summaries[f]
		return s, ok
	}
	analyzeFn(n, get, false, func(pos token.Pos, callee *types.Func) {
		if callee != nil {
			pass.Reportf(pos,
				"call to %s flushes pages, but a page marked dirty on this path has not been WAL-appended (no-steal policy: append before flushing)",
				callee.Name())
			return
		}
		pass.Reportf(pos,
			"flush reachable while a page is marked dirty but not WAL-appended (no-steal policy: append before flushing)")
	})
}

// ModuleFacts computes the walorder fact set for mod; the latchorder
// analyzer reuses it as its own ModuleFacts hook.
func ModuleFacts(mod *analysis.Module) (any, error) { return moduleFacts(mod) }
