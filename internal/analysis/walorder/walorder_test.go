package walorder_test

import (
	"testing"

	"segdiff/internal/analysis/analysistest"
	"segdiff/internal/analysis/walorder"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, walorder.Analyzer, "walorder")
}
