// Package dataflow is the interprocedural layer under the segdifflint
// analyzers: a bottom-up summary fixpoint over the module call graph
// (Summaries) and a forward fact-propagation engine over the
// statement-level CFG of one function body (Forward).
//
// The model is deliberately lattice-shaped rather than SSA-complete. An
// analyzer defines a small comparable abstract state, a join, and a
// per-statement transfer function; Forward computes the join-over-paths
// state entering every CFG block. Summaries lets the transfer function
// of one function consult the already-computed summaries of its callees,
// so facts like "this callee appends to the WAL before it flushes" or
// "this callee releases the page handle it is passed" flow across
// function and package boundaries. Both engines terminate because
// analyzer states are finite lattices and the fixpoints only ever move
// up them.
package dataflow

import (
	"go/ast"
	"go/types"
	"reflect"

	"segdiff/internal/analysis/callgraph"
	"segdiff/internal/analysis/cfg"
)

// Getter returns the current summary of fn, or nil when fn has no
// summary (not declared in the module, or not yet computed within this
// strongly connected component — treat as unknown, i.e. bottom).
type Getter func(fn *types.Func) any

// sccRounds bounds the fixpoint iterations within one strongly
// connected component. Analyzer lattices are a few booleans tall, so a
// cycle's summaries stabilize in at most height·|scc| rounds; the cap
// is a backstop against a non-monotone transfer function, not a tuning
// knob.
const sccRounds = 8

// Summaries computes a summary for every function of the call graph in
// bottom-up order: when transfer runs for a function, get already
// returns the final summaries of its callees outside the function's
// cycle. Within a cycle, transfer is re-run until the summaries of the
// whole component stop changing (compared with reflect.DeepEqual), so
// mutual recursion converges to a consistent fixpoint.
func Summaries(g *callgraph.Graph, transfer func(n *callgraph.Node, get Getter) any) map[*types.Func]any {
	out := map[*types.Func]any{}
	get := func(fn *types.Func) any { return out[fn] }
	for _, scc := range g.BottomUp() {
		for round := 0; round < sccRounds; round++ {
			changed := false
			for _, n := range scc {
				next := transfer(n, get)
				if !reflect.DeepEqual(out[n.Fn], next) {
					out[n.Fn] = next
					changed = true
				}
			}
			if !changed || len(scc) == 1 {
				break
			}
		}
	}
	return out
}

// Forward propagates an abstract state through g from entry, joining
// over all paths, and returns the state entering every block. transfer
// folds one statement into the state; join must be commutative,
// associative, and idempotent, and the set of reachable states must be
// finite (a worklist fixpoint is run until block in-states stabilize).
// Unreachable blocks are absent from the result.
func Forward[S comparable](g *cfg.Graph, entry S, join func(S, S) S, transfer func(S, ast.Stmt) S) map[*cfg.Block]S {
	in := map[*cfg.Block]S{g.Entry: entry}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		state := in[b]
		for _, st := range b.Nodes {
			state = transfer(state, st)
		}
		for _, e := range b.Succs {
			prev, seen := in[e.To]
			next := state
			if seen {
				next = join(prev, state)
				if next == prev {
					continue
				}
			}
			in[e.To] = next
			work = append(work, e.To)
		}
	}
	return in
}

// ExitReachable reports whether g's exit block is reachable from its
// entry — whether the function body can terminate at all. A body whose
// only way out is blocking forever (for {} with no breaking path, a
// select with no returning arm) has an unreachable exit.
func ExitReachable(g *cfg.Graph) bool {
	seen := map[*cfg.Block]bool{g.Entry: true}
	work := []*cfg.Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if b == g.Exit {
			return true
		}
		for _, e := range b.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return false
}
