package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"segdiff/internal/analysis"
	"segdiff/internal/analysis/callgraph"
	"segdiff/internal/analysis/cfg"
	"segdiff/internal/analysis/dataflow"
	"segdiff/internal/analysis/loader"
)

// parseBody parses src (a full file) and returns the CFG of the named
// function's body.
func parseBody(t *testing.T, src, name string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return cfg.New(fd.Body)
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func TestExitReachable(t *testing.T) {
	src := `package p
func loops() { for { } }
func breaks() { for { break } }
func returns(x bool) { if x { return }; _ = x }
func spins(ch chan int) { for { select { case <-ch: } } }
func stops(ch chan int) { for { select { case <-ch: return } } }
`
	cases := []struct {
		fn   string
		want bool
	}{
		{"loops", false},
		{"breaks", true},
		{"returns", true},
		{"spins", false},
		{"stops", true},
	}
	for _, c := range cases {
		if got := dataflow.ExitReachable(parseBody(t, src, c.fn)); got != c.want {
			t.Errorf("ExitReachable(%s) = %v, want %v", c.fn, got, c.want)
		}
	}
}

// TestForward tracks a two-point lattice — "mark() may have been called"
// — and checks the join over branch and loop paths.
func TestForward(t *testing.T) {
	src := `package p
func mark() {}
func other() {}
func f(a bool) {
	if a {
		mark()
	}
	other()
}
`
	g := parseBody(t, src, "f")
	isCall := func(s ast.Stmt, name string) bool {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
	in := dataflow.Forward(g, false,
		func(a, b bool) bool { return a || b },
		func(s bool, st ast.Stmt) bool { return s || isCall(st, "mark") })

	// The block holding the other() call joins the marked and unmarked
	// arms, so its in-state must be true (may-have-marked).
	found := false
	for b, state := range in {
		for _, st := range b.Nodes {
			if isCall(st, "other") {
				found = true
				if !state {
					t.Error("block containing other() should join to may-marked")
				}
			}
		}
	}
	if !found {
		t.Fatal("other() call not found in any reachable block")
	}
	if !in[g.Exit] {
		t.Error("exit in-state should be may-marked")
	}
}

// TestSummaries computes a transitive "calls Leaf" fact bottom-up over
// the callgraph fixture and checks propagation through the chain and
// through the Even/Odd cycle.
func TestSummaries(t *testing.T) {
	pkg, err := loader.LoadDir("", "../callgraph/testdata/src/callgraph", "fixture/callgraph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	g := callgraph.Build(&analysis.Module{Packages: []*analysis.Package{pkg}})

	summaries := dataflow.Summaries(g, func(n *callgraph.Node, get dataflow.Getter) any {
		if n.Fn.Name() == "Leaf" {
			return true
		}
		for _, c := range n.Callees {
			if v, ok := get(c.Fn).(bool); ok && v {
				return true
			}
		}
		return false
	})

	want := map[string]bool{"Leaf": true, "Mid": true, "Top": true, "Closure": true,
		"Even": false, "Odd": false, "Indirect": false}
	for fn, n := range g.Nodes {
		w, ok := want[n.Fn.Name()]
		if !ok {
			continue
		}
		if got := summaries[fn].(bool); got != w {
			t.Errorf("summary[%s] = %v, want %v", n.Fn.Name(), got, w)
		}
	}
}
