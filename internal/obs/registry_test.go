package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter did not return the registered cell")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Gauge("g") != g {
		t.Fatal("Gauge did not return the registered cell")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if r.Histogram("lat") != h {
		t.Fatal("Histogram did not return the registered cell")
	}
	// 0 lands in bucket 0 (upper bound 1), 1 in bucket 1 (upper bound
	// 2), 1000 in bucket 10 (upper bound 1024); negatives clamp to 0.
	h.Observe(0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(-5)
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 4 || s.Sum != 1001 {
		t.Fatalf("count=%d sum=%d, want 4/1001", s.Count, s.Sum)
	}
	want := map[uint64]uint64{1: 2, 2: 1, 1024: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for ub, n := range want {
		if s.Buckets[ub] != n {
			t.Fatalf("bucket %d = %d, want %d", ub, s.Buckets[ub], n)
		}
	}
	if got := s.Mean(); got != 1001.0/4 {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Max(); got != 1024 {
		t.Fatalf("max = %d, want 1024", got)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Max() != 0 {
		t.Fatal("empty snapshot mean/max should be 0")
	}
}

func TestHistogramClampsToLastBucket(t *testing.T) {
	var h Histogram
	h.Observe(int64(1) << 62) // bit length 63 > histBuckets-1
	s := h.snapshot()
	if s.Buckets[uint64(1)<<(histBuckets-1)] != 1 {
		t.Fatalf("oversized observation not clamped: %v", s.Buckets)
	}
}

func TestSnapshotSourcesAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	ext := uint64(10)
	r.RegisterSource(func(put func(string, uint64)) { put("ext.c", ext) })
	s := r.Snapshot()
	if s.Counter("a") != 1 || s.Counter("b") != 2 || s.Counter("ext.c") != 10 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
	if s.Counter("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	if got := s.Names(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "ext.c" {
		t.Fatalf("names = %v", got)
	}
}

// TestSnapshotMonotonic asserts the registry invariant the engine tests
// rely on: counter values never decrease across snapshots, even while
// other goroutines are incrementing.
func TestSnapshotMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(3)
				}
			}
		}()
	}
	prev := r.Snapshot()
	for i := 0; i < 200; i++ {
		cur := r.Snapshot()
		if cur.Counter("n") < prev.Counter("n") {
			t.Fatalf("counter went backwards: %d -> %d", prev.Counter("n"), cur.Counter("n"))
		}
		if cur.Histograms["h"].Count < prev.Histograms["h"].Count {
			t.Fatal("histogram count went backwards")
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("shared") != 800 {
		t.Fatalf("shared counter = %d, want 800", s.Counter("shared"))
	}
	if s.Gauges["g"] != 800 {
		t.Fatalf("gauge = %d, want 800", s.Gauges["g"])
	}
	if s.Histograms["h"].Count != 800 {
		t.Fatalf("histogram count = %d, want 800", s.Histograms["h"].Count)
	}
}
