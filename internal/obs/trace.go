package obs

import (
	"fmt"
	"regexp"
	"strings"
	"time"
)

// wallRE matches the volatile wall-time field of a node annotation.
var wallRE = regexp.MustCompile(`wall=[^ )]+`)

// NormalizeWall replaces the volatile wall-time field of an EXPLAIN
// ANALYZE line with "wall=X" so golden tests can compare output exactly.
func NormalizeWall(line string) string { return wallRE.ReplaceAllString(line, "wall=X") }

// Trace is the runtime record of one executed query, produced by
// EXPLAIN ANALYZE: the plan tree annotated with what actually happened.
// Page counters are measured as buffer-pool deltas around each plan
// node, so they are exact only when the query runs without concurrent
// queries on the same store; row counters are exact always.
type Trace struct {
	SQL    string       `json:"sql"`
	Mode   string       `json:"mode"`
	WallNS int64        `json:"wall_ns"`
	Rows   int          `json:"rows"`
	Nodes  []*TraceNode `json:"nodes"`
}

// TraceNode annotates one plan node. A fused scan unit is one node with
// per-branch children: rows are attributed to the branch that returned
// them, while page I/O is attributed to the shared scan (the unit node),
// since one heap fetch serves every branch.
type TraceNode struct {
	// Plan is the planner's description of the node, identical to the
	// corresponding EXPLAIN line (without branch indentation).
	Plan string `json:"plan"`
	// Branch is the UNION branch index this node computes, -1 for nodes
	// that are not branches (plain statements, fused unit headers).
	Branch int `json:"branch"`
	// EstRows is the planner's output-row estimate, -1 when the planner
	// had no statistics for the node.
	EstRows      int64  `json:"est_rows"`
	RowsExamined int64  `json:"rows_examined"`
	RowsReturned int64  `json:"rows_returned"`
	PagesRead    uint64 `json:"pages_read"`
	PagesHit     uint64 `json:"pages_hit"`
	PrefetchHits uint64 `json:"prefetch_hits"`
	ZoneSkipped  uint64 `json:"zone_skipped_pages"`
	WallNS       int64  `json:"wall_ns"`
	Children     []*TraceNode `json:"children,omitempty"`
}

// annot renders the runtime annotation appended to a node's plan text.
// Tests normalize the volatile wall field with NormalizeWall.
func (n *TraceNode) annot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(actual rows=%d examined=%d pages_read=%d pages_hit=%d prefetch_hits=%d zone_skipped=%d wall=%s",
		n.RowsReturned, n.RowsExamined, n.PagesRead, n.PagesHit, n.PrefetchHits, n.ZoneSkipped,
		time.Duration(n.WallNS))
	if n.EstRows >= 0 {
		fmt.Fprintf(&b, " est_rows=%d", n.EstRows)
	}
	b.WriteString(")")
	return b.String()
}

// Lines renders the trace as EXPLAIN ANALYZE output: one line per node,
// children indented under their unit with their branch index, matching
// the plain EXPLAIN layout.
func (t *Trace) Lines() []string {
	var out []string
	for _, n := range t.Nodes {
		out = append(out, n.render(""))
		for _, c := range n.Children {
			out = append(out, c.render("  "))
		}
	}
	return out
}

func (n *TraceNode) render(indent string) string {
	prefix := indent
	if indent != "" && n.Branch >= 0 {
		prefix = fmt.Sprintf("%sBRANCH %d: ", indent, n.Branch)
	}
	return prefix + n.Plan + " " + n.annot()
}

// RowsExaminedTotal sums rows examined over the whole tree.
func (t *Trace) RowsExaminedTotal() int64 { return t.sum(func(n *TraceNode) int64 { return n.RowsExamined }) }

// RowsReturnedTotal sums rows returned over the whole tree (before
// UNION deduplication).
func (t *Trace) RowsReturnedTotal() int64 { return t.sum(func(n *TraceNode) int64 { return n.RowsReturned }) }

// PagesReadTotal sums page reads over the whole tree.
func (t *Trace) PagesReadTotal() uint64 {
	var total uint64
	t.walk(func(n *TraceNode) { total += n.PagesRead })
	return total
}

func (t *Trace) sum(f func(*TraceNode) int64) int64 {
	var total int64
	t.walk(func(n *TraceNode) { total += f(n) })
	return total
}

func (t *Trace) walk(f func(*TraceNode)) {
	var rec func(*TraceNode)
	rec = func(n *TraceNode) {
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	for _, n := range t.Nodes {
		rec(n)
	}
}
