package obs

import (
	"encoding/json"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is the opt-in HTTP debug endpoint: registry snapshots as
// JSON under /metrics, the slow-query log under /slow, expvar under
// /debug/vars, and the pprof profilers under /debug/pprof/. It binds
// its own mux — nothing is registered on http.DefaultServeMux — so
// embedding the engine never exposes profiling unless asked to.
type DebugServer struct {
	ln     net.Listener
	srv    *http.Server
	served chan error // closed send of the Serve result; joined in Close
}

// DebugMux builds the debug route set on a fresh mux: registry
// snapshots as JSON under /metrics, the slow-query log under /slow,
// expvar under /debug/vars, and the pprof profilers under
// /debug/pprof/. The slow log may be nil. Callers that already run an
// HTTP listener (cmd/segdiffd) mount these routes on their own mux;
// ServeDebug wraps them in a standalone server.
func DebugMux(reg *Registry, slow *SlowLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		var entries []SlowQuery
		if slow != nil {
			entries = slow.Entries()
		}
		writeJSON(w, entries)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts a debug server on addr (for example "127.0.0.1:0"
// to pick a free port; the chosen address is available from Addr). The
// slow log may be nil. The server runs until Close.
func ServeDebug(addr string, reg *Registry, slow *SlowLog) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := DebugMux(reg, slow)
	d := &DebugServer{
		ln:     ln,
		srv:    &http.Server{Handler: mux},
		served: make(chan error, 1),
	}
	go func() { d.served <- d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the address the server is listening on.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down, joins the serve goroutine, and returns
// any error other than the expected shutdown sentinel.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	if serr := <-d.served; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		err = errors.Join(err, serr)
	}
	return err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
