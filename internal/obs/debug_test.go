package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.queries").Add(3)
	slow := NewSlowLog(0, 4)
	slow.Note(SlowQuery{SQL: "SELECT 1", Wall: time.Second, Rows: 1})

	d, err := ServeDebug("127.0.0.1:0", reg, slow)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := d.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	base := "http://" + d.Addr()

	var snap Snapshot
	if err := json.Unmarshal(getBody(t, base+"/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counter("engine.queries") != 3 {
		t.Fatalf("metrics snapshot = %+v", snap)
	}

	var entries []SlowQuery
	if err := json.Unmarshal(getBody(t, base+"/slow"), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].SQL != "SELECT 1" {
		t.Fatalf("slow entries = %+v", entries)
	}

	// expvar and the pprof index must respond; their bodies are owned by
	// the stdlib, presence is enough.
	if len(getBody(t, base+"/debug/vars")) == 0 {
		t.Fatal("empty /debug/vars")
	}
	if len(getBody(t, base+"/debug/pprof/")) == 0 {
		t.Fatal("empty /debug/pprof/")
	}
}

func TestDebugServerNilSlowLog(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := d.Close(); cerr != nil {
			t.Error(cerr)
		}
	}()
	var entries []SlowQuery
	if err := json.Unmarshal(getBody(t, "http://"+d.Addr()+"/slow"), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestDebugServerBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:bogus", NewRegistry(), nil); err == nil {
		t.Fatal("expected listen error")
	}
}
