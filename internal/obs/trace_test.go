package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		SQL:    "SELECT 1",
		Mode:   "auto",
		WallNS: 1500,
		Rows:   3,
		Nodes: []*TraceNode{
			{
				Plan:         "FUSED INDEX SCAN t_a ON t BRANCHES 2",
				Branch:       -1,
				EstRows:      13,
				RowsExamined: 10,
				RowsReturned: 7,
				PagesRead:    4,
				PagesHit:     2,
				WallNS:       1000,
				Children: []*TraceNode{
					{Plan: "INDEX SCAN t_a ON t", Branch: 0, EstRows: 4, RowsExamined: 5, RowsReturned: 3, WallNS: 400},
					{Plan: "INDEX SCAN t_a ON t", Branch: 1, EstRows: -1, RowsExamined: 5, RowsReturned: 4, WallNS: 600},
				},
			},
			{Plan: "SEQ SCAN u", Branch: 2, EstRows: -1, RowsExamined: 6, RowsReturned: 1, PagesRead: 1, ZoneSkipped: 2, WallNS: 500},
		},
	}
}

func TestTraceLines(t *testing.T) {
	lines := sampleTrace().Lines()
	want := []string{
		"FUSED INDEX SCAN t_a ON t BRANCHES 2 (actual rows=7 examined=10 pages_read=4 pages_hit=2 prefetch_hits=0 zone_skipped=0 wall=1µs est_rows=13)",
		"  BRANCH 0: INDEX SCAN t_a ON t (actual rows=3 examined=5 pages_read=0 pages_hit=0 prefetch_hits=0 zone_skipped=0 wall=400ns est_rows=4)",
		"  BRANCH 1: INDEX SCAN t_a ON t (actual rows=4 examined=5 pages_read=0 pages_hit=0 prefetch_hits=0 zone_skipped=0 wall=600ns)",
		"SEQ SCAN u (actual rows=1 examined=6 pages_read=1 pages_hit=0 prefetch_hits=0 zone_skipped=2 wall=500ns)",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %q, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d:\n got %q\nwant %q", i, lines[i], want[i])
		}
	}
}

func TestNormalizeWall(t *testing.T) {
	in := "SEQ SCAN u (actual rows=1 examined=6 pages_read=1 pages_hit=0 prefetch_hits=0 zone_skipped=2 wall=512.3µs)"
	got := NormalizeWall(in)
	if !strings.Contains(got, "wall=X)") || strings.Contains(got, "512") {
		t.Fatalf("normalize failed: %q", got)
	}
}

func TestTraceTotals(t *testing.T) {
	tr := sampleTrace()
	if got := tr.RowsExaminedTotal(); got != 26 {
		t.Fatalf("examined total = %d, want 26", got)
	}
	if got := tr.RowsReturnedTotal(); got != 15 {
		t.Fatalf("returned total = %d, want 15", got)
	}
	if got := tr.PagesReadTotal(); got != 5 {
		t.Fatalf("pages total = %d, want 5", got)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	raw, err := json.Marshal(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.SQL != "SELECT 1" || len(back.Nodes) != 2 || len(back.Nodes[0].Children) != 2 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
}
