package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 4)
	if l.Threshold() != time.Millisecond {
		t.Fatalf("threshold = %v", l.Threshold())
	}
	if l.Note(SlowQuery{SQL: "fast", Wall: time.Microsecond}) {
		t.Fatal("fast query recorded")
	}
	if !l.Note(SlowQuery{SQL: "slow", Wall: 2 * time.Millisecond, Rows: 1}) {
		t.Fatal("slow query not recorded")
	}
	got := l.Entries()
	if len(got) != 1 || got[0].SQL != "slow" || got[0].Rows != 1 {
		t.Fatalf("entries = %+v", got)
	}
	if l.Total() != 1 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestSlowLogRingWraps(t *testing.T) {
	l := NewSlowLog(0, 3)
	for i := 0; i < 5; i++ {
		l.Note(SlowQuery{SQL: fmt.Sprintf("q%d", i), Wall: time.Duration(i)})
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []string{"q2", "q3", "q4"} {
		if got[i].SQL != want {
			t.Fatalf("entry %d = %q, want %q (oldest first)", i, got[i].SQL, want)
		}
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
}

func TestSlowLogDefaultCapacity(t *testing.T) {
	l := NewSlowLog(0, 0)
	for i := 0; i < defaultSlowCap+10; i++ {
		l.Note(SlowQuery{Wall: 1})
	}
	if got := len(l.Entries()); got != defaultSlowCap {
		t.Fatalf("len = %d, want %d", got, defaultSlowCap)
	}
}
