// Package obs is the engine's observability layer: a metrics registry of
// atomic counters, gauges, and fixed-bucket latency histograms; a
// per-query execution Trace produced by EXPLAIN ANALYZE; a ring-buffer
// slow-query log; and an opt-in HTTP debug endpoint (expvar + pprof +
// registry snapshots).
//
// The package is stdlib-only and allocation-free on the hot path: metric
// cells are padded atomics (one cache line each, like the pager's stat
// counters), registration is the only operation that takes a lock, and
// callers cache the returned cell pointers so steady-state increments
// never touch the registry maps.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// padCell is an atomic counter padded to its own cache line so that
// concurrent writers to neighbouring metrics do not invalidate each
// other's cache lines (false sharing); see pager.padUint64 for the
// sizing rationale.
type padCell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing metric. The zero value is ready
// to use, but counters are normally obtained from a Registry so they
// appear in snapshots.
type Counter struct{ c padCell }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.c.v.Load() }

// Gauge is a metric that can move in both directions (worker counts,
// pool occupancy). Padded like Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations whose value's bit length is i, i.e. the half-open
// range [2^(i-1), 2^i) for i > 0 and exactly 0 for i = 0. 48 buckets
// cover every nanosecond latency up to ~3.3 days.
const histBuckets = 48

// Histogram is a fixed-bucket histogram of non-negative observations
// (typically latencies in nanoseconds). Observe is lock-free; buckets
// are power-of-two-width so the index is one bit-length instruction.
type Histogram struct {
	count   padCell
	sum     padCell
	buckets [histBuckets]padCell
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].v.Add(1)
	h.count.v.Add(1)
	h.sum.v.Add(uint64(v))
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Buckets maps
// the exclusive upper bound of each non-empty bucket to its count.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Buckets map[uint64]uint64 `json:"buckets,omitempty"`
}

// Mean returns the mean observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Max returns the exclusive upper bound of the highest non-empty bucket
// — an upper estimate of the largest observation — or 0 when empty.
func (s HistogramSnapshot) Max() uint64 {
	var max uint64
	for ub := range s.Buckets {
		if ub > max {
			max = ub
		}
	}
	return max
}

// snapshot copies the live buckets. Concurrent Observe calls may land
// between the loads; the result is still monotonic cell by cell.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.v.Load(), Sum: h.sum.v.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].v.Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[uint64]uint64)
			}
			s.Buckets[uint64(1)<<i] = n
		}
	}
	return s
}

// Source folds externally owned cumulative counters into a snapshot —
// the pager stat counters, WAL commit/fsync counts, and zone-map skip
// counts already live as atomics in their subsystems, so the registry
// reads them at snapshot time instead of mirroring every increment. The
// callback must only report monotonically non-decreasing values.
type Source func(put func(name string, v uint64))

// Registry is a set of named metrics plus snapshot-time sources. Metric
// lookup by name locks; the returned cells are stable pointers, so hot
// paths resolve their metrics once and then increment lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	sources  []Source              // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterSource adds a snapshot-time counter source.
func (r *Registry) RegisterSource(s Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, s)
}

// Snapshot is a point-in-time copy of every metric in a Registry,
// including source-folded counters. Counter values are monotonically
// non-decreasing across successive snapshots.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter by name, 0 when absent.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Names returns the sorted counter names (for deterministic rendering).
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures every registered metric and runs the sources. The
// registry lock is held across the capture, so two metrics updated by
// the same already-finished operation are both included; individual
// cells are read atomically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]uint64, len(r.counters))}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	for _, src := range r.sources {
		src(func(name string, v uint64) { s.Counters[name] = v })
	}
	return s
}
