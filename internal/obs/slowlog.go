package obs

import (
	"sync"
	"time"
)

// defaultSlowCap is the ring capacity when the caller does not choose
// one: enough recent history to diagnose a slow period, small enough
// that the log's memory stays bounded and off any allocation profile.
const defaultSlowCap = 64

// SlowQuery is one retained slow-query record. The log is purely
// volatile: nothing here is ever written to durable storage.
type SlowQuery struct {
	SQL  string        `json:"sql"`
	Wall time.Duration `json:"wall_ns"`
	Rows int           `json:"rows"`
	Err  string        `json:"err,omitempty"`
	When time.Time     `json:"when"`
	// Source identifies where the query came from when the log is fed
	// by a layer above the engine — segdiffd records the request id and
	// endpoint here so a slow entry can be joined back to its request.
	// Engine-level logs leave it empty.
	Source string `json:"source,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of the most recent queries
// whose wall time met a threshold. Recording takes a mutex — slow
// queries are by definition off the hot path — while fast queries only
// pay a threshold comparison in the caller.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	entries   []SlowQuery // guarded by mu; ring storage
	next      int         // guarded by mu; ring write position
	full      bool        // guarded by mu; ring has wrapped
	total     uint64      // guarded by mu; lifetime slow-query count
}

// NewSlowLog returns a log retaining the last capacity queries at least
// threshold slow. capacity <= 0 selects the default.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = defaultSlowCap
	}
	return &SlowLog{threshold: threshold, entries: make([]SlowQuery, capacity)}
}

// Threshold returns the configured slowness threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Note records q if it met the threshold and reports whether it did.
func (l *SlowLog) Note(q SlowQuery) bool {
	if q.Wall < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[l.next] = q
	l.next++
	if l.next == len(l.entries) {
		l.next = 0
		l.full = true
	}
	l.total++
	return true
}

// Total returns the lifetime count of recorded slow queries, including
// those already evicted from the ring.
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained records, oldest first.
func (l *SlowLog) Entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]SlowQuery(nil), l.entries[:l.next]...)
	}
	out := make([]SlowQuery, 0, len(l.entries))
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}
