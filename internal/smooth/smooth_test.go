package smooth

import (
	"math"
	"math/rand"
	"testing"

	"segdiff/internal/timeseries"
)

// spikySine builds a sine wave sampled every 300 s with isolated spikes.
func spikySine(n int, spikeEvery int, spikeAmp float64) (*timeseries.Series, map[int64]bool) {
	s := &timeseries.Series{}
	spikes := map[int64]bool{}
	for i := 0; i < n; i++ {
		t := int64(i) * 300
		v := 10 * math.Sin(float64(i)/40)
		if spikeEvery > 0 && i%spikeEvery == spikeEvery/2 {
			v += spikeAmp
			spikes[t] = true
		}
		if err := s.Append(timeseries.Point{T: t, V: v}); err != nil {
			panic(err)
		}
	}
	return s, spikes
}

func TestRobustRemovesSpikes(t *testing.T) {
	s, spikes := spikySine(400, 50, 15)
	sm, err := Robust(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sm.Len() != s.Len() {
		t.Fatalf("length changed: %d -> %d", s.Len(), sm.Len())
	}
	for i, p := range sm.Points() {
		if !spikes[p.T] {
			continue
		}
		clean := 10 * math.Sin(float64(i)/40)
		if math.Abs(p.V-clean) > 1.0 {
			t.Errorf("spike at t=%d not removed: smoothed %.2f, clean %.2f", p.T, p.V, clean)
		}
	}
}

func TestRobustPreservesSmoothSignal(t *testing.T) {
	s, _ := spikySine(400, 0, 0) // no spikes
	sm, err := Robust(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i, p := range sm.Points() {
		if d := math.Abs(p.V - s.At(i).V); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 0.2 {
		t.Fatalf("smooth signal distorted by %.3f", maxErr)
	}
}

// A genuine multi-sample drop (a CAD event) must survive smoothing:
// robustness weights must not erase a feature supported by many samples.
func TestRobustPreservesRealDrops(t *testing.T) {
	s := &timeseries.Series{}
	for i := 0; i < 300; i++ {
		t0 := int64(i) * 300
		v := 15.0
		// 5-degree drop over samples 100..112 (1 hour), recovery by 160.
		switch {
		case i >= 100 && i < 112:
			v -= 5 * float64(i-100) / 12
		case i >= 112 && i < 160:
			v -= 5 * (1 - float64(i-112)/48)
		}
		if err := s.Append(timeseries.Point{T: t0, V: v}); err != nil {
			panic(err)
		}
	}
	sm, err := Robust(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := sm.MinMax()
	if lo > 11.0 {
		t.Fatalf("drop flattened: smoothed min %.2f, want near 10", lo)
	}
}

func TestRobustShortSeries(t *testing.T) {
	for n := 0; n <= 2; n++ {
		pts := make([]timeseries.Point, n)
		for i := range pts {
			pts[i] = timeseries.Point{T: int64(i), V: float64(i)}
		}
		s := timeseries.MustNew(pts)
		sm, err := Robust(s, Config{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if sm.Len() != n {
			t.Fatalf("n=%d: len %d", n, sm.Len())
		}
	}
}

func TestRobustConfigValidation(t *testing.T) {
	s, _ := spikySine(10, 0, 0)
	if _, err := Robust(s, Config{Bandwidth: -1}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if _, err := Robust(s, Config{Iterations: -1}); err == nil {
		t.Fatal("negative iterations accepted")
	}
}

func TestRobustConstantSeries(t *testing.T) {
	pts := make([]timeseries.Point, 50)
	for i := range pts {
		pts[i] = timeseries.Point{T: int64(i) * 300, V: 7}
	}
	sm, err := Robust(timeseries.MustNew(pts), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sm.Points() {
		if math.Abs(p.V-7) > 1e-9 {
			t.Fatalf("constant series changed: %v at t=%d", p.V, p.T)
		}
	}
}

func TestMovingMedianRemovesSpikes(t *testing.T) {
	s, spikes := spikySine(200, 40, 20)
	sm, err := MovingMedian(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sm.Points() {
		if !spikes[p.T] {
			continue
		}
		clean := 10 * math.Sin(float64(i)/40)
		if math.Abs(p.V-clean) > 1.0 {
			t.Errorf("median: spike at t=%d survives: %.2f vs %.2f", p.T, p.V, clean)
		}
	}
}

func TestMovingMedianEdges(t *testing.T) {
	s := timeseries.MustNew([]timeseries.Point{{T: 0, V: 1}, {T: 1, V: 100}, {T: 2, V: 3}})
	sm, err := MovingMedian(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Middle point: median(1,100,3) = 3.
	if sm.At(1).V != 3 {
		t.Fatalf("median middle = %v", sm.At(1).V)
	}
	// Edge windows are truncated: median(1,100) = 50.5.
	if sm.At(0).V != 50.5 {
		t.Fatalf("median edge = %v", sm.At(0).V)
	}
}

func TestMovingMedianZeroWindowIsIdentity(t *testing.T) {
	s, _ := spikySine(50, 10, 5)
	sm, err := MovingMedian(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sm.Points() {
		if p != s.At(i) {
			t.Fatalf("k=0 changed point %d", i)
		}
	}
	if _, err := MovingMedian(s, -1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestRobustNoisyRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := &timeseries.Series{}
	for i := 0; i < 500; i++ {
		v := 10*math.Sin(float64(i)/60) + rng.NormFloat64()*0.3
		if err := s.Append(timeseries.Point{T: int64(i) * 300, V: v}); err != nil {
			panic(err)
		}
	}
	sm, err := Robust(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i, p := range sm.Points() {
		clean := 10 * math.Sin(float64(i)/60)
		mse += (p.V - clean) * (p.V - clean)
		_ = i
	}
	mse /= float64(sm.Len())
	if mse > 0.3*0.3 {
		t.Fatalf("smoother did not reduce noise: mse %.4f", mse)
	}
}
