// Package smooth implements the preprocessing step of the paper's
// evaluation: "The data are preprocessed by a smoothing method with robust
// weights so that anomalies are removed."
//
// Robust implements a LOESS-style local linear smoother with a tricube
// kernel over a fixed time bandwidth, iterated with bisquare robustness
// weights so isolated anomaly spikes receive near-zero weight and are
// effectively removed, while genuine sharp drops spanning several samples
// (the CAD events being searched for) are preserved.
//
// MovingMedian is a simpler alternative robust filter.
package smooth

import (
	"fmt"
	"math"
	"sort"

	"segdiff/internal/timeseries"
)

// Config controls the Robust smoother.
type Config struct {
	// Bandwidth is the half-width, in time units, of the local window
	// around each point. Default: 30 minutes.
	Bandwidth int64
	// Iterations is the number of robustness reweighting passes after the
	// initial fit. Default: 2.
	Iterations int
}

func (c Config) normalize() (Config, error) {
	if c.Bandwidth == 0 {
		c.Bandwidth = 1800
	}
	if c.Bandwidth < 0 {
		return c, fmt.Errorf("smooth: negative bandwidth %d", c.Bandwidth)
	}
	if c.Iterations == 0 {
		c.Iterations = 2
	}
	if c.Iterations < 0 {
		return c, fmt.Errorf("smooth: negative iterations %d", c.Iterations)
	}
	return c, nil
}

// Robust returns a smoothed copy of s using robust local linear regression.
func Robust(s *timeseries.Series, cfg Config) (*timeseries.Series, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	n := s.Len()
	if n <= 2 {
		return s.Clone(), nil
	}
	pts := s.Points()

	robust := make([]float64, n)
	for i := range robust {
		robust[i] = 1
	}
	fitted := make([]float64, n)

	for pass := 0; pass <= cfg.Iterations; pass++ {
		lo := 0
		for i, p := range pts {
			// Advance window [lo, hi) covering |t - p.T| <= Bandwidth.
			for lo < n && pts[lo].T < p.T-cfg.Bandwidth {
				lo++
			}
			hi := i
			for hi < n && pts[hi].T <= p.T+cfg.Bandwidth {
				hi++
			}
			fitted[i] = localLinear(pts[lo:hi], robust[lo:hi], p.T, cfg.Bandwidth)
		}
		if pass == cfg.Iterations {
			break
		}
		updateRobustWeights(pts, fitted, robust)
	}

	out := make([]timeseries.Point, n)
	for i, p := range pts {
		out[i] = timeseries.Point{T: p.T, V: fitted[i]}
	}
	return timeseries.New(out)
}

// localLinear fits v = a + b·(t-t0) by weighted least squares over win with
// tricube distance weights times the supplied robustness weights, and
// evaluates the fit at t0. Degenerate fits fall back to the weighted mean,
// then to the raw neighbours' mean.
func localLinear(win []timeseries.Point, rw []float64, t0, bandwidth int64) float64 {
	var sw, swx, swy, swxx, swxy float64
	for i, p := range win {
		d := math.Abs(float64(p.T-t0)) / float64(bandwidth+1)
		w := tricube(d) * rw[i]
		if w <= 0 {
			continue
		}
		x := float64(p.T - t0)
		sw += w
		swx += w * x
		swy += w * p.V
		swxx += w * x * x
		swxy += w * x * p.V
	}
	if sw <= 0 {
		// All weights vanished (e.g. everything flagged anomalous):
		// fall back to the unweighted window mean.
		sum := 0.0
		for _, p := range win {
			sum += p.V
		}
		return sum / float64(len(win))
	}
	det := sw*swxx - swx*swx
	if math.Abs(det) < 1e-12 {
		return swy / sw
	}
	a := (swxx*swy - swx*swxy) / det
	return a // fit evaluated at x = 0, i.e. t = t0
}

// updateRobustWeights computes bisquare weights from the residuals:
// w_i = (1 - (r_i / 6·MAD)^2)^2, clipped at 0.
func updateRobustWeights(pts []timeseries.Point, fitted, robust []float64) {
	n := len(pts)
	res := make([]float64, n)
	for i := range pts {
		res[i] = math.Abs(pts[i].V - fitted[i])
	}
	sorted := append([]float64(nil), res...)
	sort.Float64s(sorted)
	mad := sorted[n/2]
	if mad < 1e-9 {
		// Residuals are essentially zero: keep all weights at 1.
		for i := range robust {
			robust[i] = 1
		}
		return
	}
	c := 6 * mad
	for i := range robust {
		u := res[i] / c
		if u >= 1 {
			robust[i] = 0
			continue
		}
		w := 1 - u*u
		robust[i] = w * w
	}
}

func tricube(d float64) float64 {
	if d >= 1 {
		return 0
	}
	w := 1 - d*d*d
	return w * w * w
}

// MovingMedian returns a copy of s where each value is replaced by the
// median of the window of half-width k samples around it (2k+1 samples,
// truncated at the edges). k must be non-negative.
func MovingMedian(s *timeseries.Series, k int) (*timeseries.Series, error) {
	if k < 0 {
		return nil, fmt.Errorf("smooth: negative window half-width %d", k)
	}
	pts := s.Points()
	out := make([]timeseries.Point, len(pts))
	buf := make([]float64, 0, 2*k+1)
	for i, p := range pts {
		lo, hi := i-k, i+k+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(pts) {
			hi = len(pts)
		}
		buf = buf[:0]
		for _, q := range pts[lo:hi] {
			buf = append(buf, q.V)
		}
		sort.Float64s(buf)
		m := len(buf)
		med := buf[m/2]
		if m%2 == 0 {
			med = (buf[m/2-1] + buf[m/2]) / 2
		}
		out[i] = timeseries.Point{T: p.T, V: med}
	}
	return timeseries.New(out)
}
