package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"segdiff"
)

// testOptions is the collection shape every server test uses.
func testOptions() segdiff.Options {
	return segdiff.Options{Epsilon: 0.2, Window: 8 * time.Hour}
}

// wavePoints builds n points for one sensor: a slow ramp with a sharp
// drop of depth at the midpoint, so Drops(1h, -depth/2) always finds
// it. seed offsets the series so sensors differ.
func wavePoints(seed, n int) []segdiff.Point {
	pts := make([]segdiff.Point, n)
	level := 10.0 + float64(seed)
	for i := range pts {
		v := level + 0.001*float64(i%7)
		if i >= n/2 {
			v -= 8
		}
		pts[i] = segdiff.Point{Time: int64(i * 60), Value: v}
	}
	return pts
}

// batchFor wraps one sensor's wave as a SensorBatch.
func batchFor(name string, seed, n int) segdiff.SensorBatch {
	return segdiff.SensorBatch{Sensor: name, Points: wavePoints(seed, n)}
}

// newTestCollection builds an in-memory collection holding sensors
// alpha, beta, gamma with distinct waves.
func newTestCollection(t *testing.T) *segdiff.Collection {
	t.Helper()
	col := segdiff.NewMemoryCollection(testOptions())
	err := col.AppendAll([]segdiff.SensorBatch{
		batchFor("alpha", 0, 400),
		batchFor("beta", 3, 400),
		batchFor("gamma", 7, 400),
	})
	if err != nil {
		t.Fatalf("seed AppendAll: %v", err)
	}
	t.Cleanup(func() { col.Close() })
	return col
}

// newTestServer wires a collection into a Server behind httptest and
// returns a Client pointed at it.
func newTestServer(t *testing.T, col *segdiff.Collection, cfg Config) (*Server, *segdiff.Client) {
	t.Helper()
	s := New(col, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, segdiff.NewClient(hs.URL, hs.Client())
}

func TestServerHappyPath(t *testing.T) {
	col := newTestCollection(t)
	srv, cl := newTestServer(t, col, Config{SlowThreshold: time.Nanosecond})
	ctx := context.Background()

	if err := cl.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	names, err := cl.Sensors(ctx)
	if err != nil {
		t.Fatalf("sensors: %v", err)
	}
	if want := []string{"alpha", "beta", "gamma"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("sensors = %v, want %v", names, want)
	}

	// Searches over the wire must be element-identical to direct
	// Collection calls, including sensors with no matches.
	for _, tc := range []struct {
		jump    bool
		v       float64
		sensors []string
	}{
		{false, -3, nil},
		{false, -3, []string{"beta"}},
		{false, -100, nil}, // no matches anywhere: three empty lines
		{true, 3, nil},
		{true, 3, []string{"gamma", "alpha"}},
	} {
		span := time.Hour
		var got, want []segdiff.SensorMatches
		if tc.jump {
			got, err = cl.Jumps(ctx, span, tc.v, tc.sensors...)
			if err == nil {
				want, err = col.JumpsContext(ctx, span, tc.v, tc.sensors...)
			}
		} else {
			got, err = cl.Drops(ctx, span, tc.v, tc.sensors...)
			if err == nil {
				want, err = col.DropsContext(ctx, span, tc.v, tc.sensors...)
			}
		}
		if err != nil {
			t.Fatalf("search jump=%v v=%v sensors=%v: %v", tc.jump, tc.v, tc.sensors, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("search jump=%v v=%v sensors=%v:\n got %+v\nwant %+v", tc.jump, tc.v, tc.sensors, got, want)
		}
	}

	// Ingest through the client, then observe the new sensor's drop.
	sensors, points, err := cl.Append(ctx, []segdiff.SensorBatch{batchFor("delta", 1, 300)})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if sensors != 1 || points != 300 {
		t.Fatalf("append counted sensors=%d points=%d, want 1, 300", sensors, points)
	}
	got, err := cl.Drops(ctx, time.Hour, -3, "delta")
	if err != nil {
		t.Fatalf("drops after append: %v", err)
	}
	if len(got) != 1 || got[0].Sensor != "delta" || len(got[0].Matches) == 0 {
		t.Fatalf("drops after append = %+v, want delta with matches", got)
	}

	// EXPLAIN ANALYZE passthrough carries the trace fields.
	tr, err := cl.Explain(ctx, "alpha", false, time.Hour, -3)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if tr.SQL == "" || len(tr.Lines) == 0 || tr.Rows == 0 {
		t.Fatalf("explain trace looks empty: %+v", tr)
	}
	if _, err := cl.Explain(ctx, "alpha", true, time.Hour, 3); err != nil {
		t.Fatalf("explain jump: %v", err)
	}

	// Request metrics and the slow log (threshold 1ns: everything logs)
	// are visible on the same listener.
	snap := srv.Registry().Snapshot()
	if snap.Counter("http_drops_requests") == 0 || snap.Counter("http_append_requests") == 0 {
		t.Fatalf("request counters missing from %v", snap.Names())
	}
	entries := srv.SlowLog().Entries()
	if len(entries) == 0 {
		t.Fatal("slow log is empty at a 1ns threshold")
	}
	foundID := false
	for _, e := range entries {
		if strings.HasPrefix(e.Source, "req-") {
			foundID = true
			break
		}
	}
	if !foundID {
		t.Fatalf("no slow entry carries a request id: %+v", entries)
	}
}

func TestDebugEndpointsOnListener(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{Debug: true})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	for _, path := range []string{"/metrics", "/slow", "/debug/vars", "/healthz"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
	}

	// Without Debug, the profilers stay unmounted.
	s2 := New(col, Config{})
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	resp, err := http.Get(hs2.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("GET /debug/vars without Debug = %d, want 404", resp.StatusCode)
	}
}

func TestMalformedRequestsNever5xx(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{MaxBodyBytes: 1 << 10})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	directPoints := countPoints(t, col)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"missing span", "GET", "/v1/drops?v=-3", "", 400},
		{"bad span", "GET", "/v1/drops?span=banana&v=-3", "", 400},
		{"zero span", "GET", "/v1/drops?span=0&v=-3", "", 400},
		{"negative span", "GET", "/v1/drops?span=-1h&v=-3", "", 400},
		{"span over window", "GET", "/v1/drops?span=9h&v=-3", "", 400},
		{"span overflow seconds", "GET", "/v1/drops?span=99999999999999999999&v=-3", "", 400},
		{"missing v", "GET", "/v1/drops?span=1h", "", 400},
		{"bad v", "GET", "/v1/drops?span=1h&v=abc", "", 400},
		{"infinite v", "GET", "/v1/drops?span=1h&v=1e999", "", 400},
		{"drop with positive v", "GET", "/v1/drops?span=1h&v=3", "", 400},
		{"jump with negative v", "GET", "/v1/jumps?span=1h&v=-3", "", 400},
		{"bad sensor name", "GET", "/v1/drops?span=1h&v=-3&sensors=no%20spaces", "", 400},
		{"empty sensor in list", "GET", "/v1/drops?span=1h&v=-3&sensors=alpha,,beta", "", 400},
		{"unknown sensor", "GET", "/v1/drops?span=1h&v=-3&sensors=nosuch", "", 404},
		{"bad timeout", "GET", "/v1/drops?span=1h&v=-3&timeout=soon", "", 400},
		{"negative timeout", "GET", "/v1/drops?span=1h&v=-3&timeout=-5s", "", 400},
		{"search as POST", "POST", "/v1/drops?span=1h&v=-3", "", 405},
		{"append as GET", "GET", "/v1/append", "", 405},
		{"append empty body", "POST", "/v1/append", "", 400},
		{"append not json", "POST", "/v1/append", "hello", 400},
		{"append wrong shape", "POST", "/v1/append", `{"sensor":"x"}`, 400},
		{"append unknown field", "POST", "/v1/append", `[{"sensor":"x","points":[],"extra":1}]`, 400},
		{"append trailing data", "POST", "/v1/append", `[] []`, 400},
		{"append bad sensor name", "POST", "/v1/append", `[{"sensor":"bad name","points":[]}]`, 400},
		{"append oversized body", "POST", "/v1/append", `[{"sensor":"x","points":[` + strings.Repeat(`{"t":1,"v":2},`, 200) + `{"t":9,"v":9}]}]`, 413},
		{"explain missing sensor", "GET", "/v1/explain?span=1h&v=-3", "", 400},
		{"explain unknown sensor", "GET", "/v1/explain?span=1h&v=-3&sensor=nosuch", "", 404},
		{"explain bad kind", "GET", "/v1/explain?span=1h&v=-3&sensor=alpha&kind=dip", "", 400},
		{"explain kind/v mismatch", "GET", "/v1/explain?span=1h&v=-3&sensor=alpha&kind=jump", "", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, hs.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := hs.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (body: %s)", resp.StatusCode, tc.want, msg)
			}
			if resp.StatusCode >= 500 {
				t.Fatalf("malformed input produced a 5xx: %d %s", resp.StatusCode, msg)
			}
		})
	}

	// None of the rejected appends may have written anything.
	if got := countPoints(t, col); got != directPoints {
		t.Fatalf("rejected appends changed the collection: %d -> %d points", directPoints, got)
	}
}

// TestAppendRejectsPartialBatch feeds a body whose first batch is valid
// and second is not: nothing at all may be written.
func TestAppendRejectsPartialBatch(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	before := countPoints(t, col)
	body := `[{"sensor":"fresh","points":[{"t":0,"v":1}]},{"sensor":"bad name","points":[]}]`
	resp, err := http.Post(hs.URL+"/v1/append", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	names, err := col.Names()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "fresh" {
			t.Fatal("partially valid append created sensor \"fresh\"")
		}
	}
	if got := countPoints(t, col); got != before {
		t.Fatalf("partially valid append wrote points: %d -> %d", before, got)
	}
}

// countPoints totals Stats().Points across the collection's sensors.
func countPoints(t *testing.T, col *segdiff.Collection) int {
	t.Helper()
	names, err := col.Names()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range names {
		ix, err := col.Sensor(n)
		if err != nil {
			t.Fatal(err)
		}
		st, err := ix.Stats()
		if err != nil {
			t.Fatal(err)
		}
		total += st.Points
	}
	return total
}

func TestPanicIsolation(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{})
	boom := true
	s.testHookRequest = func(endpoint string) {
		if boom && endpoint == "drops" {
			boom = false
			panic("handler bug")
		}
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/v1/drops?span=1h&v=-3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 500 || !strings.Contains(string(body), "handler bug") {
		t.Fatalf("panicking request = %d %q, want 500 mentioning the panic", resp.StatusCode, body)
	}
	if got := s.Registry().Snapshot().Counter("http_panics"); got != 1 {
		t.Fatalf("http_panics = %d, want 1", got)
	}

	// The process survived; the next request on the same server works,
	// and the panicking request released its lane slot.
	resp, err = http.Get(hs.URL + "/v1/drops?span=1h&v=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("request after panic = %d, want 200", resp.StatusCode)
	}
	if got := s.Registry().Snapshot().Counters["lane_read_inflight"]; got != 0 {
		t.Fatalf("lane_read_inflight = %d after requests finished, want 0", got)
	}
}

func TestLaneAdmission(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{ReadSlots: 1, WriteSlots: 1})
	admitted := make(chan struct{})
	release := make(chan struct{})
	s.testHookRequest = func(endpoint string) {
		if endpoint == "drops" {
			admitted <- struct{}{}
			<-release
		}
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/v1/drops?span=1h&v=-3")
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-admitted // the slot is now held

	// Second read: the lane is full, fast-fail 429 with Retry-After.
	resp, err := http.Get(hs.URL + "/v1/jumps?span=1h&v=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second read = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	// Writes ride a separate lane: ingest still works while reads are
	// saturated, which is the whole point of two lanes.
	wresp, err := http.Post(hs.URL+"/v1/append", "application/json",
		strings.NewReader(`[{"sensor":"w","points":[{"t":0,"v":1}]}]`))
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != 200 {
		t.Fatalf("append during read saturation = %d, want 200", wresp.StatusCode)
	}

	// Unlaned endpoints are unaffected too.
	sresp, err := http.Get(hs.URL + "/v1/sensors")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != 200 {
		t.Fatalf("sensors during read saturation = %d, want 200", sresp.StatusCode)
	}

	close(release)
	if code := <-done; code != 200 {
		t.Fatalf("held request finished with %d, want 200", code)
	}
	snap := s.Registry().Snapshot()
	if snap.Counter("lane_read_rejected") == 0 {
		t.Fatal("lane_read_rejected never incremented")
	}
	if got := snap.Counters["lane_read_inflight"]; got != 0 {
		t.Fatalf("lane_read_inflight = %d at rest, want 0", got)
	}
}

func TestRequestIDHeader(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(hs.URL + "/v1/sensors")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if !strings.HasPrefix(id, "req-") || seen[id] {
			t.Fatalf("bad or repeated request id %q (seen %v)", id, seen)
		}
		seen[id] = true
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ReadSlots <= 0 || c.WriteSlots <= 0 || c.DefaultTimeout <= 0 ||
		c.MaxTimeout <= 0 || c.MaxBodyBytes <= 0 || c.SlowThreshold <= 0 {
		t.Fatalf("withDefaults left a zero field: %+v", c)
	}
	kept := Config{ReadSlots: 3, WriteSlots: 5, DefaultTimeout: time.Second,
		MaxTimeout: time.Minute, MaxBodyBytes: 99, SlowThreshold: time.Millisecond}
	if got := kept.withDefaults(); !reflect.DeepEqual(got, kept) {
		t.Fatalf("withDefaults overrode explicit values: %+v", got)
	}
}

func TestClientTimeoutForwarding(t *testing.T) {
	// The client forwards its context deadline as the server-side
	// timeout parameter; a request without a deadline sends none.
	var gotTimeout string
	probe := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTimeout = r.URL.Query().Get("timeout")
		fmt.Fprintln(w, `{"sensors":[]}`)
	}))
	defer probe.Close()
	cl := segdiff.NewClient(probe.URL, nil)

	if _, err := cl.Sensors(context.Background()); err != nil {
		t.Fatal(err)
	}
	if gotTimeout != "" {
		t.Fatalf("deadline-free request sent timeout=%q", gotTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Sensors(ctx); err != nil {
		t.Fatal(err)
	}
	if gotTimeout == "" {
		t.Fatal("deadline was not forwarded as a timeout parameter")
	}
	if d, err := time.ParseDuration(gotTimeout); err != nil || d <= 0 || d > 5*time.Second {
		t.Fatalf("forwarded timeout %q out of range", gotTimeout)
	}
}

func TestAPIErrorShape(t *testing.T) {
	col := newTestCollection(t)
	_, cl := newTestServer(t, col, Config{})
	_, err := cl.Drops(context.Background(), time.Hour, -3, "nosuch")
	if err == nil {
		t.Fatal("unknown sensor did not error")
	}
	var ae *segdiff.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T, want *segdiff.APIError", err)
	}
	if ae.StatusCode != 404 || ae.RequestID == "" || !strings.Contains(ae.Message, "nosuch") {
		t.Fatalf("APIError = %+v, want 404 with request id and sensor name", ae)
	}
}
