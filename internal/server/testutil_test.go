package server

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// handlerResp is one in-process handler invocation's result.
type handlerResp struct {
	code int
	body string
}

// doHandler drives the server mux directly, no listener involved.
func doHandler(t *testing.T, s *Server, method, path, body string) handlerResp {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return handlerResp{code: rec.Code, body: rec.Body.String()}
}

// newHTTPTestServer mounts s behind httptest and returns its base URL.
func newHTTPTestServer(t *testing.T, s *Server) string {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}
