package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"segdiff"
)

// httpError is a request-decoding or request-routing failure with the
// status it must produce. Every malformed input maps to a 4xx through
// this type; the decoders never let bad bytes reach the engine.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// badf builds a 400.
func badf(format string, args ...any) *httpError {
	return &httpError{code: 400, msg: fmt.Sprintf(format, args...)}
}

// parseDuration accepts a Go duration string ("90m", "1h30m") or a bare
// integer number of seconds ("5400").
func parseDuration(s string) (time.Duration, error) {
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		const maxSeconds = int64(math.MaxInt64) / int64(time.Second)
		if secs < -maxSeconds || secs > maxSeconds {
			return 0, fmt.Errorf("seconds value %d overflows a duration", secs)
		}
		return time.Duration(secs) * time.Second, nil
	}
	return time.ParseDuration(s)
}

// parseTimeout resolves the optional per-request timeout parameter
// against the server defaults: absent selects def, anything above max
// is capped to max, and a non-positive or unparsable value is a 400.
func parseTimeout(q url.Values, def, max time.Duration) (time.Duration, error) {
	raw := q.Get("timeout")
	if raw == "" {
		return def, nil
	}
	d, err := parseDuration(raw)
	if err != nil {
		return 0, badf("invalid timeout %q: %v", raw, err)
	}
	if d <= 0 {
		return 0, badf("timeout %q must be positive", raw)
	}
	if d > max {
		d = max
	}
	return d, nil
}

// searchParams is one decoded /v1/drops or /v1/jumps request.
type searchParams struct {
	Span    time.Duration
	V       float64
	Sensors []string // nil = every sensor
}

// parseSearchParams decodes and validates span/v/sensors. jump selects
// the sign convention (drops need v < 0, jumps v > 0); maxSpan is the
// collection's window, the longest span any search may use. Validation
// here means engine-side failures are genuine 5xx server faults: a
// request that passes this function is well-formed.
func parseSearchParams(q url.Values, jump bool, maxSpan time.Duration) (searchParams, error) {
	var p searchParams
	rawSpan := q.Get("span")
	if rawSpan == "" {
		return p, badf("missing span parameter (duration, e.g. span=1h)")
	}
	span, err := parseDuration(rawSpan)
	if err != nil {
		return p, badf("invalid span %q: %v", rawSpan, err)
	}
	if span < time.Second {
		return p, badf("span %q is below one second", rawSpan)
	}
	if maxSpan > 0 && span > maxSpan {
		return p, badf("span %v exceeds the collection window %v", span, maxSpan)
	}
	p.Span = span

	rawV := q.Get("v")
	if rawV == "" {
		return p, badf("missing v parameter (minimum change, e.g. v=-3)")
	}
	v, err := strconv.ParseFloat(rawV, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return p, badf("invalid v %q: not a finite number", rawV)
	}
	if jump && v <= 0 {
		return p, badf("jump searches need v > 0, got %v", v)
	}
	if !jump && v >= 0 {
		return p, badf("drop searches need v < 0, got %v", v)
	}
	p.V = v

	p.Sensors, err = parseSensorList(q.Get("sensors"))
	if err != nil {
		return p, err
	}
	return p, nil
}

// parseSensorList decodes the comma-separated sensor filter; "" means
// every sensor (nil).
func parseSensorList(raw string) ([]string, error) {
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]string, 0, len(parts))
	for _, name := range parts {
		if !segdiff.ValidSensorName(name) {
			return nil, badf("invalid sensor name %q", name)
		}
		out = append(out, name)
	}
	return out, nil
}

// explainParams is one decoded /v1/explain request: a single sensor's
// search to trace.
type explainParams struct {
	Sensor string
	Jump   bool
	Span   time.Duration
	V      float64
}

// parseExplainParams decodes sensor/kind/span/v for the EXPLAIN ANALYZE
// passthrough.
func parseExplainParams(q url.Values, maxSpan time.Duration) (explainParams, error) {
	var p explainParams
	switch kind := q.Get("kind"); kind {
	case "", "drop":
		p.Jump = false
	case "jump":
		p.Jump = true
	default:
		return p, badf("invalid kind %q: want drop or jump", kind)
	}
	sp, err := parseSearchParams(q, p.Jump, maxSpan)
	if err != nil {
		return p, err
	}
	p.Span, p.V = sp.Span, sp.V
	p.Sensor = q.Get("sensor")
	if p.Sensor == "" {
		return p, badf("missing sensor parameter")
	}
	if !segdiff.ValidSensorName(p.Sensor) {
		return p, badf("invalid sensor name %q", p.Sensor)
	}
	return p, nil
}

// decodeAppendBody decodes a /v1/append body: a JSON array of
// SensorBatch objects. The whole body is decoded and validated before
// anything reaches the collection, so a malformed request can never
// leave a partial write — it fails here with a 4xx or it ingests as one
// AppendAll call. Unknown fields and trailing garbage are rejected, and
// every point value must be finite (JSON cannot encode NaN/Inf, but the
// check keeps the invariant local).
func decodeAppendBody(r io.Reader) ([]segdiff.SensorBatch, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var batches []segdiff.SensorBatch
	if err := dec.Decode(&batches); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, &httpError{code: 413, msg: fmt.Sprintf("append body exceeds %d bytes", maxErr.Limit)}
		}
		return nil, badf("invalid append body: %v", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badf("append body has trailing data after the batch array")
	}
	for i, b := range batches {
		if !segdiff.ValidSensorName(b.Sensor) {
			return nil, badf("batch %d: invalid sensor name %q", i, b.Sensor)
		}
		for j, pt := range b.Points {
			if math.IsNaN(pt.Value) || math.IsInf(pt.Value, 0) {
				return nil, badf("batch %d point %d: non-finite value", i, j)
			}
		}
	}
	return batches, nil
}
