// Package server implements segdiffd, the drop-query server: the
// Collection API exposed over HTTP/JSON for many concurrent exploratory
// clients, in the spirit of the paper's ad-hoc (V, T) query model.
//
// Endpoints:
//
//	POST /v1/append   ingest SensorBatch JSON via Collection.AppendAll
//	GET  /v1/drops    multi-sensor drop search, NDJSON (one sensor/line)
//	GET  /v1/jumps    the symmetric jump search
//	GET  /v1/sensors  sensor listing
//	GET  /v1/explain  EXPLAIN ANALYZE passthrough for one sensor
//	GET  /healthz     liveness (503 while draining)
//	GET  /metrics     request + lane metrics registry snapshot
//	GET  /slow        slow-request log (entries carry the request id)
//	     /debug/...   pprof/expvar, mounted when Config.Debug is set
//
// Production posture is the point of the package: every request runs
// under a context deadline that propagates into query execution, reads
// and writes are admitted through separate bounded lanes that fast-fail
// with 429 when full (so ingest cannot starve queries and vice versa),
// handler panics become 500s without taking the process down, and
// Shutdown drains gracefully — stop accepting, finish in-flight
// requests, then hand the collection back for checkpoint and close.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"segdiff"
	"segdiff/internal/obs"
)

// Config tunes a Server. The zero value serves with the documented
// defaults.
type Config struct {
	// ReadSlots bounds concurrently executing search/explain requests
	// (default 4×GOMAXPROCS). Requests beyond the bound fail fast with
	// 429 rather than queueing without limit.
	ReadSlots int
	// WriteSlots bounds concurrently executing append requests
	// (default 2). Writes serialize on each sensor's engine lock anyway;
	// a small lane keeps ingest from occupying request capacity.
	WriteSlots int
	// DefaultTimeout is the per-request deadline applied when the
	// client does not send one (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 2m).
	MaxTimeout time.Duration
	// MaxBodyBytes caps the append request body (default 32 MiB).
	MaxBodyBytes int64
	// SlowThreshold is the slow-request log threshold (default 200ms).
	SlowThreshold time.Duration
	// Debug additionally mounts the obs debug mux (pprof, expvar) on
	// the same listener. /metrics and /slow are always mounted.
	Debug bool
}

func (c Config) withDefaults() Config {
	if c.ReadSlots <= 0 {
		c.ReadSlots = 4 * maxProcs()
	}
	if c.WriteSlots <= 0 {
		c.WriteSlots = 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 200 * time.Millisecond
	}
	return c
}

// Server serves one Collection. Create with New, start with Start (or
// mount Handler on a listener of your own), stop with Shutdown.
type Server struct {
	col  *segdiff.Collection
	cfg  Config
	reg  *obs.Registry
	slow *obs.SlowLog

	read  *lane
	write *lane

	mux      *http.ServeMux
	hsrv     *http.Server
	ln       net.Listener
	served   chan error // closed send of the Serve result; joined in Shutdown
	reqSeq   atomic.Uint64
	draining atomic.Bool
	panics   *obs.Counter

	// testHookRequest, when set, runs inside every admitted /v1 request
	// after admission and deadline setup, before the handler body. Tests
	// use it to hold requests in flight deterministically.
	testHookRequest func(endpoint string)
}

// New builds a server over col. The collection stays caller-owned:
// Shutdown drains HTTP traffic but leaves checkpointing and closing the
// collection to the caller, which knows whether it will serve again.
func New(col *segdiff.Collection, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		col:  col,
		cfg:  cfg,
		reg:  obs.NewRegistry(),
		slow: obs.NewSlowLog(cfg.SlowThreshold, 0),
	}
	s.read = newLane(s.reg, "read", cfg.ReadSlots)
	s.write = newLane(s.reg, "write", cfg.WriteSlots)
	s.panics = s.reg.Counter("http_panics")
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// routes mounts every endpoint on the server mux.
func (s *Server) routes() {
	s.mux.Handle("/v1/append", s.endpoint("append", s.write, http.MethodPost, s.handleAppend))
	s.mux.Handle("/v1/drops", s.endpoint("drops", s.read, http.MethodGet, s.searchHandler(false)))
	s.mux.Handle("/v1/jumps", s.endpoint("jumps", s.read, http.MethodGet, s.searchHandler(true)))
	s.mux.Handle("/v1/sensors", s.endpoint("sensors", nil, http.MethodGet, s.handleSensors))
	s.mux.Handle("/v1/explain", s.endpoint("explain", s.read, http.MethodGet, s.handleExplain))
	s.mux.HandleFunc("/healthz", s.handleHealth)

	// The obs debug mux rides on the same listener: metric snapshots and
	// the slow-request log are always available; the profilers only when
	// asked for (Config.Debug), matching ServeDebug's opt-in posture.
	dm := obs.DebugMux(s.reg, s.slow)
	s.mux.Handle("/metrics", dm)
	s.mux.Handle("/slow", dm)
	if s.cfg.Debug {
		s.mux.Handle("/debug/", dm)
	}
}

// Handler returns the server's root handler, for callers that manage
// their own listener (and for httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the request-level metrics registry (lane gauges,
// per-endpoint latency histograms, panic and rejection counters).
func (s *Server) Registry() *obs.Registry { return s.reg }

// SlowLog exposes the slow-request log.
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// Start listens on addr (for example "127.0.0.1:0" to pick a free
// port; see Addr) and serves in the background until Shutdown.
func (s *Server) Start(addr string) error {
	if s.ln != nil {
		return fmt.Errorf("server: already started on %s", s.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.mux}
	s.served = make(chan error, 1)
	go func() { s.served <- s.hsrv.Serve(ln) }()
	return nil
}

// Addr returns the listening address, "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the base URL of a started server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server gracefully: the listener closes (new
// connections are refused), new requests on live connections get 503,
// in-flight requests run to completion, and the serve goroutine is
// joined. ctx bounds the drain; when it expires remaining connections
// are closed forcefully and ctx.Err() is returned. The collection is
// not touched — callers checkpoint and close it once Shutdown returns,
// completing the SIGTERM sequence (stop accepting, finish in-flight,
// checkpoint, close).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.hsrv == nil {
		return nil
	}
	err := s.hsrv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		err = errors.Join(err, s.hsrv.Close())
	}
	if serr := <-s.served; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		err = errors.Join(err, serr)
	}
	return err
}

// nextRequestID labels one request for response headers and the
// slow-request log.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("req-%d", s.reqSeq.Add(1))
}

// handleHealth is the liveness probe: cheap, unlaned, and the first
// endpoint to observe a drain.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
