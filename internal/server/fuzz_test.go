package server

import (
	"errors"
	"net/url"
	"strings"
	"testing"
	"time"

	"segdiff"
)

// FuzzSearchParams throws arbitrary query strings at the three query
// decoders. The contract under fuzzing: never panic, and every
// rejection is an *httpError carrying a 4xx — malformed input must not
// be able to reach the engine or map to a 5xx.
func FuzzSearchParams(f *testing.F) {
	for _, seed := range []string{
		"span=1h&v=-3",
		"span=3600&v=-0.5&sensors=alpha,beta",
		"span=1h&v=3&kind=jump&sensor=alpha",
		"span=&v=",
		"span=banana&v=NaN",
		"span=-1h&v=-1e308&timeout=0",
		"span=99999999999999999999&v=-3",
		"span=1h&v=-3&sensors=,,,",
		"span=1h&v=-3&timeout=banana",
		"v=%zz&span=%zz",
		"span=1h&v=-3&sensors=" + strings.Repeat("a", 300),
		"kind=dip&sensor=x&span=1s&v=-1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return // not even a query string; nothing to decode
		}
		check := func(what string, err error) {
			if err == nil {
				return
			}
			var he *httpError
			if !errors.As(err, &he) {
				t.Fatalf("%s(%q) returned a non-http error: %v", what, raw, err)
			}
			if he.code < 400 || he.code > 499 {
				t.Fatalf("%s(%q) mapped to %d, want 4xx", what, raw, he.code)
			}
		}
		for _, jump := range []bool{false, true} {
			_, err := parseSearchParams(q, jump, 8*time.Hour)
			check("parseSearchParams", err)
		}
		_, err = parseExplainParams(q, 8*time.Hour)
		check("parseExplainParams", err)
		_, err = parseTimeout(q, 30*time.Second, 2*time.Minute)
		check("parseTimeout", err)
	})
}

// FuzzAppendBody throws arbitrary bytes at the append body decoder.
// Same contract: no panic, rejections are 4xx httpErrors, and — since
// the decoder is the only gate before Collection.AppendAll — anything
// it accepts must be structurally valid batches.
func FuzzAppendBody(f *testing.F) {
	for _, seed := range []string{
		`[]`,
		`[{"sensor":"alpha","points":[{"t":0,"v":1.5},{"t":60,"v":2}]}]`,
		`[{"sensor":"alpha","points":[]}]`,
		`[{"sensor":"bad name","points":[]}]`,
		`[{"sensor":"x","points":[{"t":0,"v":1}],"extra":true}]`,
		`[] trailing`,
		`{"sensor":"x"}`,
		`[{"sensor":"x","points":[{"t":0,"v":1e999}]}]`,
		`[[[[`,
		`null`,
		"\x00\x01\x02",
		`[{"sensor":"` + strings.Repeat("s", 9000) + `","points":[]}]`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		batches, err := decodeAppendBody(strings.NewReader(string(data)))
		if err != nil {
			var he *httpError
			if !errors.As(err, &he) {
				t.Fatalf("decodeAppendBody(%q) returned a non-http error: %v", data, err)
			}
			if he.code < 400 || he.code > 499 {
				t.Fatalf("decodeAppendBody(%q) mapped to %d, want 4xx", data, he.code)
			}
			return
		}
		for _, b := range batches {
			if !segdiff.ValidSensorName(b.Sensor) {
				t.Fatalf("decoder accepted invalid sensor name %q", b.Sensor)
			}
		}
	})
}
