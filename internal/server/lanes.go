package server

import (
	"runtime"

	"segdiff/internal/obs"
)

func maxProcs() int { return runtime.GOMAXPROCS(0) }

// lane is one admission lane: a bounded semaphore with fast-fail
// acquisition and its own metrics. Reads and writes each get a lane, so
// a burst of ingest cannot occupy the query capacity (and vice versa);
// requests beyond a lane's bound are rejected immediately with 429
// rather than queued, pushing backpressure to the client while the
// server keeps serving what it admitted.
type lane struct {
	name     string
	slots    chan struct{}
	inflight *obs.Gauge   // requests currently holding a slot
	admitted *obs.Counter // lifetime admissions
	rejected *obs.Counter // lifetime fast-fail rejections
}

// newLane builds a lane with n slots, registering its metrics as
// lane_<name>_{inflight,admitted,rejected}.
func newLane(reg *obs.Registry, name string, n int) *lane {
	return &lane{
		name:     name,
		slots:    make(chan struct{}, n),
		inflight: reg.Gauge("lane_" + name + "_inflight"),
		admitted: reg.Counter("lane_" + name + "_admitted"),
		rejected: reg.Counter("lane_" + name + "_rejected"),
	}
}

// tryAcquire claims a slot without blocking, reporting whether it did.
func (l *lane) tryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		l.admitted.Inc()
		l.inflight.Add(1)
		return true
	default:
		l.rejected.Inc()
		return false
	}
}

// release returns a slot claimed by tryAcquire.
func (l *lane) release() {
	l.inflight.Add(-1)
	<-l.slots
}
