package server

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestGracefulDrain walks the SIGTERM sequence: with a request held
// in flight, Shutdown must close the listener to new connections,
// let the in-flight request finish with a full response, and only
// then return, leaving the in-flight gauge at zero.
func TestGracefulDrain(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{})
	admitted := make(chan struct{})
	release := make(chan struct{})
	s.testHookRequest = func(endpoint string) {
		if endpoint == "drops" {
			admitted <- struct{}{}
			<-release
		}
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	addr := s.Addr()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Get(s.URL() + "/v1/drops?span=1h&v=-3")
		if err != nil {
			inflight <- -1
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == 200 && len(body) > 0 {
			inflight <- 200
		} else {
			inflight <- resp.StatusCode
		}
	}()
	<-admitted

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, "draining flag", s.Draining)

	// New connections are refused once the listener closes.
	waitFor(t, "listener to close", func() bool {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			return true
		}
		conn.Close()
		return false
	})

	// The in-flight request is still running — Shutdown has not
	// returned — and completes normally once released.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if code := <-inflight; code != 200 {
		t.Fatalf("in-flight request finished with %d, want 200 with a body", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.Registry().Snapshot().Counters["lane_read_inflight"]; got != 0 {
		t.Fatalf("lane_read_inflight = %d after drain, want 0", got)
	}
	// The collection is untouched by Shutdown: the caller checkpoints.
	if _, err := col.Names(); err != nil {
		t.Fatalf("collection unusable after drain: %v", err)
	}
}

// TestDrainRejectsNewRequests checks the 503 path for requests that
// arrive on an already-open connection after draining begins.
func TestDrainRejectsNewRequests(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{})
	s.draining.Store(true) // drain without Start: exercise the flag alone

	resp := doHandler(t, s, "GET", "/v1/drops?span=1h&v=-3", "")
	if resp.code != http.StatusServiceUnavailable {
		t.Fatalf("laned request while draining = %d, want 503", resp.code)
	}
	hresp := doHandler(t, s, "GET", "/healthz", "")
	if hresp.code != http.StatusServiceUnavailable || !strings.Contains(hresp.body, "draining") {
		t.Fatalf("healthz while draining = %d %q, want 503 draining", hresp.code, hresp.body)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown before Start: %v", err)
	}
}

// TestDeadlineExpiry holds a request past its deadline and wants a
// prompt 504 with the admission slot released and the gauge back at
// zero — an expired deadline must not leak capacity.
func TestDeadlineExpiry(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{ReadSlots: 1})
	s.testHookRequest = func(endpoint string) {
		if endpoint == "drops" || endpoint == "append" {
			time.Sleep(30 * time.Millisecond) // past the 1ms deadline below
		}
	}
	hs := newHTTPTestServer(t, s)

	start := time.Now()
	resp, err := http.Get(hs + "/v1/drops?span=1h&v=-3&timeout=1ms")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired request = %d %q, want 504", resp.StatusCode, body)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("504 took %v, want prompt failure", wall)
	}

	// Appends check the deadline before touching the collection.
	before := countPoints(t, col)
	wresp, err := http.Post(hs+"/v1/append?timeout=1ms", "application/json",
		strings.NewReader(`[{"sensor":"late","points":[{"t":0,"v":1}]}]`))
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired append = %d, want 504", wresp.StatusCode)
	}
	if got := countPoints(t, col); got != before {
		t.Fatalf("expired append wrote points: %d -> %d", before, got)
	}

	// The slot came back: with ReadSlots=1, a fresh request only
	// succeeds if the expired one released its admission.
	s.testHookRequest = nil
	ok, err := http.Get(hs + "/v1/drops?span=1h&v=-3")
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != 200 {
		t.Fatalf("request after expiry = %d, want 200 (slot leaked?)", ok.StatusCode)
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["lane_read_inflight"]; got != 0 {
		t.Fatalf("lane_read_inflight = %d after expiry, want 0", got)
	}
	if got := snap.Counters["lane_write_inflight"]; got != 0 {
		t.Fatalf("lane_write_inflight = %d after expiry, want 0", got)
	}
}

// TestStartTwice guards the listener bookkeeping.
func TestStartTwice(t *testing.T) {
	col := newTestCollection(t)
	s := New(col, Config{})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start did not error")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
