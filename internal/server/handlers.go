package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"segdiff"
	"segdiff/internal/obs"
)

// statusWriter tracks what the handler actually sent, for metrics,
// panic recovery (a 500 can only be written while nothing has been),
// and the slow-request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so NDJSON responses stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// errStatus maps a handler error to its response status: decoder
// errors carry their own 4xx, an expired request deadline is a 504, a
// client that went away is a 499 (nginx's convention), an unknown
// sensor is a 404, and anything else is a genuine 500.
func errStatus(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	case errors.Is(err, segdiff.ErrUnknownSensor):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// endpoint wraps one /v1 handler with the request lifecycle: drain
// check, lane admission (fast-fail 429), per-request deadline, panic
// isolation, per-endpoint metrics, and the slow-request log. ln may be
// nil for unlaned endpoints (/v1/sensors).
func (s *Server) endpoint(name string, ln *lane, method string, h func(http.ResponseWriter, *http.Request) error) http.Handler {
	requests := s.reg.Counter("http_" + name + "_requests")
	errsByClass := map[int]*obs.Counter{
		4: s.reg.Counter("http_" + name + "_4xx"),
		5: s.reg.Counter("http_" + name + "_5xx"),
	}
	latency := s.reg.Histogram("http_" + name + "_ns")

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		sw := &statusWriter{ResponseWriter: w}
		reqID := s.nextRequestID()
		sw.Header().Set("X-Request-Id", reqID)
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				if p == http.ErrAbortHandler { //nolint:errorlint // sentinel by identity
					panic(p)
				}
				// One request's bug must not take the server down: record
				// the panic, answer 500 if the response has not started,
				// and let the connection die if it has.
				s.panics.Inc()
				if !sw.wrote {
					http.Error(sw, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
				}
			}
			wall := time.Since(start)
			latency.Observe(wall.Nanoseconds())
			if c := errsByClass[sw.status/100]; c != nil {
				c.Inc()
			}
			s.slow.Note(obs.SlowQuery{
				SQL:    r.Method + " " + r.URL.RequestURI(),
				Wall:   wall,
				Rows:   sw.status,
				When:   time.Now(),
				Source: reqID + " " + name,
			})
		}()

		if r.Method != method {
			sw.Header().Set("Allow", method)
			http.Error(sw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if s.draining.Load() {
			http.Error(sw, "draining", http.StatusServiceUnavailable)
			return
		}
		timeout, err := parseTimeout(r.URL.Query(), s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
		if err != nil {
			http.Error(sw, err.Error(), errStatus(err))
			return
		}
		if ln != nil {
			if !ln.tryAcquire() {
				// Fast-fail backpressure: the lane is at capacity, so the
				// client retries rather than queueing here without bound.
				sw.Header().Set("Retry-After", "1")
				http.Error(sw, ln.name+" lane at capacity", http.StatusTooManyRequests)
				return
			}
			defer ln.release()
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		if hook := s.testHookRequest; hook != nil {
			hook(name)
		}
		if err := h(sw, r.WithContext(ctx)); err != nil {
			code := errStatus(err)
			if !sw.wrote {
				http.Error(sw, err.Error(), code)
			}
		}
	})
}

// maxSpan resolves the collection's window, the longest span any
// search may request. A zero option means the engine default (8 h);
// resolving it here keeps "span too long" a clean 400 at the decoder
// instead of an engine error behind a request that looked valid.
func (s *Server) maxSpan() time.Duration {
	if w := s.col.Options().Window; w > 0 {
		return w
	}
	return 8 * time.Hour
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// handleAppend ingests a JSON array of sensor batches through
// Collection.AppendAll. The body is fully decoded and validated before
// the collection is touched, so malformed input can never leave a
// partial write.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	batches, err := decodeAppendBody(body)
	if err != nil {
		return err
	}
	// The deadline is enforced up to the point of commit: once AppendAll
	// starts, each sensor's batch commits or aborts atomically on its
	// own (canceling a half-committed group would be worse than
	// finishing it), so the check happens before work begins.
	if err := r.Context().Err(); err != nil {
		return err
	}
	points := 0
	sensors := map[string]bool{}
	for _, b := range batches {
		points += len(b.Points)
		sensors[b.Sensor] = true
	}
	if err := s.col.AppendAll(batches); err != nil {
		return err
	}
	return writeJSON(w, map[string]int{"sensors": len(sensors), "points": points})
}

// searchHandler builds the shared drops/jumps handler. Results stream
// as NDJSON: one line per sensor, in sensor-name order, each line a
// SensorMatches object — so a thousand-sensor response renders
// incrementally and a client can consume it line by line.
func (s *Server) searchHandler(jump bool) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		p, err := parseSearchParams(r.URL.Query(), jump, s.maxSpan())
		if err != nil {
			return err
		}
		var results []segdiff.SensorMatches
		if jump {
			results, err = s.col.JumpsContext(r.Context(), p.Span, p.V, p.Sensors...)
		} else {
			results, err = s.col.DropsContext(r.Context(), p.Span, p.V, p.Sensors...)
		}
		if err != nil {
			return err
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		for i, sm := range results {
			if err := enc.Encode(sm); err != nil {
				return err
			}
			// Flush every few lines so large transects stream instead of
			// buffering the whole response.
			if i%16 == 15 {
				if err := bw.Flush(); err != nil {
					return err
				}
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
			}
		}
		return bw.Flush()
	}
}

// handleSensors lists the collection's sensors.
func (s *Server) handleSensors(w http.ResponseWriter, _ *http.Request) error {
	names, err := s.col.Names()
	if err != nil {
		return err
	}
	return writeJSON(w, map[string][]string{"sensors": names})
}

// handleExplain is the EXPLAIN ANALYZE passthrough: it traces one
// sensor's search and returns the annotated plan as JSON.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) error {
	p, err := parseExplainParams(r.URL.Query(), s.maxSpan())
	if err != nil {
		return err
	}
	// Check membership before resolving so a typo'd sensor is a 404
	// instead of Sensor() creating an empty index for it.
	names, err := s.col.Names()
	if err != nil {
		return err
	}
	known := false
	for _, n := range names {
		if n == p.Sensor {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("%w %q", segdiff.ErrUnknownSensor, p.Sensor)
	}
	ix, err := s.col.Sensor(p.Sensor)
	if err != nil {
		return err
	}
	if err := r.Context().Err(); err != nil {
		return err
	}
	var tr segdiff.QueryTrace
	if p.Jump {
		tr, err = ix.ExplainJumps(p.Span, p.V)
	} else {
		tr, err = ix.ExplainDrops(p.Span, p.V)
	}
	if err != nil {
		return err
	}
	return writeJSON(w, tr)
}
