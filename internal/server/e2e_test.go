package server

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"segdiff"
)

// TestServeSoak is the end-to-end harness: a real listener, several
// concurrent clients querying while a writer ingests continuously,
// with responses checked element-identical against direct Collection
// calls. The identity trick: the "frozen" sensors are never written
// during the soak, so a sensor-filtered query over them has exactly
// one right answer no matter how ingest interleaves. After the soak
// the writer quiesces and the full-collection response is compared
// too. Run under -race this doubles as the concurrency test.
func TestServeSoak(t *testing.T) {
	frozen := []string{"fz0", "fz1", "fz2", "fz3"}
	writable := []string{"wr0", "wr1"}

	col := segdiff.NewMemoryCollection(testOptions())
	var seedBatches []segdiff.SensorBatch
	for i, name := range frozen {
		seedBatches = append(seedBatches, batchFor(name, i, 500))
	}
	for i, name := range writable {
		seedBatches = append(seedBatches, batchFor(name, 10+i, 100))
	}
	if err := col.AppendAll(seedBatches); err != nil {
		t.Fatalf("seed: %v", err)
	}
	defer col.Close()

	baseline := runtime.NumGoroutine()
	// Admission rejection has its own test; the soak gets enough slots
	// that every client is always admitted regardless of GOMAXPROCS.
	s := New(col, Config{ReadSlots: 64})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	cl := segdiff.NewClient(s.URL(), nil)
	ctx := context.Background()

	soak := 1500 * time.Millisecond
	if testing.Short() {
		soak = 300 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, appends atomic.Int64
	errc := make(chan error, 16)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	// The writer: continuous ingest through the HTTP path, touching
	// only the writable sensors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := 100 // first free point index after the 100-point seed
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var batches []segdiff.SensorBatch
			for j, name := range writable {
				pts := make([]segdiff.Point, 20)
				for k := range pts {
					pts[k] = segdiff.Point{
						Time:  int64((next + k) * 60),
						Value: 10 + float64((i+j+k)%5),
					}
				}
				batches = append(batches, segdiff.SensorBatch{Sensor: name, Points: pts})
			}
			next += 20
			if _, _, err := cl.Append(ctx, batches); err != nil {
				fail("writer append: %w", err)
				return
			}
			appends.Add(1)
		}
	}()

	// K concurrent clients querying frozen sensors, each comparing the
	// wire response against the direct Collection call.
	const K = 8
	for c := 0; c < K; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pick := frozen[rng.Intn(len(frozen)):]
				span := time.Duration(1+rng.Intn(4)) * time.Hour
				jump := rng.Intn(2) == 1
				v := -3.0
				if jump {
					v = 3.0
				}
				var got, want []segdiff.SensorMatches
				var gerr, werr error
				if jump {
					got, gerr = cl.Jumps(ctx, span, v, pick...)
					want, werr = col.JumpsContext(ctx, span, v, pick...)
				} else {
					got, gerr = cl.Drops(ctx, span, v, pick...)
					want, werr = col.DropsContext(ctx, span, v, pick...)
				}
				if gerr != nil || werr != nil {
					fail("client %d: wire err %v, direct err %v", c, gerr, werr)
					return
				}
				if !reflect.DeepEqual(got, want) {
					fail("client %d: span=%v v=%v sensors=%v\nwire   %+v\ndirect %+v",
						c, span, v, pick, got, want)
					return
				}
				queries.Add(1)
			}
		}(c)
	}

	time.Sleep(soak)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if queries.Load() == 0 || appends.Load() == 0 {
		t.Fatalf("soak did no work: %d queries, %d appends", queries.Load(), appends.Load())
	}
	t.Logf("soak: %d identical queries across %d clients, %d concurrent appends",
		queries.Load(), K, appends.Load())

	// Quiesced: with the writer stopped, the full-collection response
	// (writable sensors included) must match too.
	got, err := cl.Drops(ctx, time.Hour, -3)
	if err != nil {
		t.Fatalf("quiesced drops: %v", err)
	}
	want, err := col.DropsContext(ctx, time.Hour, -3)
	if err != nil {
		t.Fatalf("quiesced direct drops: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("quiesced full-collection mismatch:\nwire   %+v\ndirect %+v", got, want)
	}

	// Drain and check for leaked goroutines: after Shutdown joins the
	// serve goroutine and idle client conns close, the count must come
	// back to (about) the pre-Start baseline.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}
