package extract

import (
	"testing"

	"segdiff/internal/feature"
	"segdiff/internal/segment"
)

func collect() (*[]feature.Boundary, func(feature.Boundary) error) {
	var out []feature.Boundary
	return &out, func(b feature.Boundary) error {
		out = append(out, b)
		return nil
	}
}

func TestNewValidation(t *testing.T) {
	_, emit := collect()
	if _, err := New(-1, 100, emit); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := New(0.1, 0, emit); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := New(0.1, 100, nil); err == nil {
		t.Fatal("nil emit accepted")
	}
}

func TestSelfPairEmitted(t *testing.T) {
	out, emit := collect()
	x, err := New(0.1, 1000, emit)
	if err != nil {
		t.Fatal(err)
	}
	// A falling segment: its self-pair must produce a drop boundary.
	if err := x.Push(segment.Segment{Ts: 0, Vs: 10, Te: 100, Ve: 2}); err != nil {
		t.Fatal(err)
	}
	foundDrop := false
	for _, b := range *out {
		if b.Kind == feature.Drop && b.TB == 0 && b.TA == 100 {
			foundDrop = true
		}
	}
	if !foundDrop {
		t.Fatalf("no self-pair drop boundary: %+v", *out)
	}
}

func TestPairingWithinWindow(t *testing.T) {
	out, emit := collect()
	x, err := New(0, 500, emit)
	if err != nil {
		t.Fatal(err)
	}
	segs := []segment.Segment{
		{Ts: 0, Vs: 0, Te: 100, Ve: 5},
		{Ts: 100, Vs: 5, Te: 200, Ve: -5},
		{Ts: 200, Vs: -5, Te: 300, Ve: 0},
	}
	for _, g := range segs {
		if err := x.Push(g); err != nil {
			t.Fatal(err)
		}
	}
	// Pairs: 3 self + (s0,s1) + (s0,s2) + (s1,s2) = 6.
	if got := x.Stats().Pairs; got != 6 {
		t.Fatalf("pairs = %d, want 6", got)
	}
	// Boundary identifying timestamps must reference real segment pairs:
	// each interval ordered, CD no later than AB. (Self-pairs report both
	// intervals as the whole segment, so TC may exceed TB there.)
	for _, b := range *out {
		if b.TD > b.TC || b.TB > b.TA || b.TD > b.TB || b.TC > b.TA {
			t.Fatalf("timestamps out of order: %+v", b)
		}
	}
}

func TestWindowEviction(t *testing.T) {
	_, emit := collect()
	x, err := New(0, 150, emit)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		g := segment.Segment{Ts: i * 100, Vs: float64(i), Te: (i + 1) * 100, Ve: float64(i + 1)}
		if err := x.Push(g); err != nil {
			t.Fatal(err)
		}
	}
	// Window w=150 behind t_B: only segments ending after t_B-150 stay.
	if n := x.WindowLen(); n > 3 {
		t.Fatalf("window retains %d segments; eviction broken", n)
	}
}

// A previous segment straddling the window start must be truncated, not
// dropped: events within w of the new segment must still be captured.
func TestTruncationAtWindowStart(t *testing.T) {
	out, emit := collect()
	x, err := New(0, 100, emit)
	if err != nil {
		t.Fatal(err)
	}
	// Long old segment [0, 500] falling steeply, then a short one.
	if err := x.Push(segment.Segment{Ts: 0, Vs: 50, Te: 500, Ve: 0}); err != nil {
		t.Fatal(err)
	}
	if err := x.Push(segment.Segment{Ts: 500, Vs: 0, Te: 600, Ve: -10}); err != nil {
		t.Fatal(err)
	}
	// Window start = 500-100 = 400; CD must appear truncated to [400,500].
	var cross []feature.Boundary
	for _, b := range *out {
		if b.TB == 500 && b.TD != b.TB { // the cross pair, not a self-pair
			cross = append(cross, b)
		}
	}
	if len(cross) == 0 {
		t.Fatal("no cross-pair boundaries emitted")
	}
	for _, b := range cross {
		if b.TD != 400 {
			t.Fatalf("TD = %d, want truncated 400", b.TD)
		}
		if b.TC != 500 {
			t.Fatalf("TC = %d", b.TC)
		}
	}
}

func TestRejectsOverlapAndZeroLength(t *testing.T) {
	_, emit := collect()
	x, _ := New(0, 100, emit)
	if err := x.Push(segment.Segment{Ts: 10, Vs: 0, Te: 10, Ve: 0}); err == nil {
		t.Fatal("zero-length segment accepted")
	}
	if err := x.Push(segment.Segment{Ts: 0, Vs: 0, Te: 100, Ve: 1}); err != nil {
		t.Fatal(err)
	}
	if err := x.Push(segment.Segment{Ts: 50, Vs: 0, Te: 150, Ve: 1}); err == nil {
		t.Fatal("overlapping segment accepted")
	}
	// A gap is fine (sensor outage).
	if err := x.Push(segment.Segment{Ts: 500, Vs: 0, Te: 600, Ve: 1}); err != nil {
		t.Fatalf("gap rejected: %v", err)
	}
}

func TestCornerStats(t *testing.T) {
	_, emit := collect()
	x, _ := New(0.1, 10000, emit)
	segs := []segment.Segment{
		{Ts: 0, Vs: 0, Te: 100, Ve: 8},
		{Ts: 100, Vs: 8, Te: 200, Ve: -3},
		{Ts: 200, Vs: -3, Te: 300, Ve: -9},
		{Ts: 300, Vs: -9, Te: 400, Ve: 2},
	}
	for _, g := range segs {
		if err := x.Push(g); err != nil {
			t.Fatal(err)
		}
	}
	st := x.Stats()
	if st.Boundaries == 0 {
		t.Fatal("no boundaries emitted")
	}
	if st.CornerCount[1]+st.CornerCount[2]+st.CornerCount[3] != st.Boundaries {
		t.Fatalf("corner histogram inconsistent: %+v", st)
	}
	avg := st.AverageCorners()
	if avg < 1 || avg > 3 {
		t.Fatalf("average corners = %v", avg)
	}
	if st.DropBoundaries+st.JumpBoundaries != st.Boundaries {
		t.Fatalf("kind split inconsistent: %+v", st)
	}
	if st.Segments != 4 {
		t.Fatalf("segments = %d", st.Segments)
	}
}

func TestEmitErrorPropagates(t *testing.T) {
	boom := func(feature.Boundary) error { return errBoom }
	x, _ := New(0.1, 100, boom)
	if err := x.Push(segment.Segment{Ts: 0, Vs: 5, Te: 100, Ve: 0}); err != errBoom {
		t.Fatalf("err = %v", err)
	}
}

var errBoom = &boomErr{}

type boomErr struct{}

func (*boomErr) Error() string { return "boom" }

func TestPreload(t *testing.T) {
	out, emit := collect()
	x, err := New(0.1, 1000, emit)
	if err != nil {
		t.Fatal(err)
	}
	pre := []segment.Segment{
		{Ts: 0, Vs: 0, Te: 100, Ve: 5},
		{Ts: 100, Vs: 5, Te: 200, Ve: 2},
	}
	if err := x.Preload(pre); err != nil {
		t.Fatal(err)
	}
	if len(*out) != 0 {
		t.Fatalf("preload emitted %d boundaries", len(*out))
	}
	if x.WindowLen() != 2 {
		t.Fatalf("window = %d", x.WindowLen())
	}
	// A new segment must pair with the preloaded ones: 1 self + 2 cross.
	if err := x.Push(segment.Segment{Ts: 200, Vs: 2, Te: 300, Ve: -4}); err != nil {
		t.Fatal(err)
	}
	if got := x.Stats().Pairs; got != 3 {
		t.Fatalf("pairs after preload push = %d, want 3", got)
	}
	crossSeen := false
	for _, b := range *out {
		if b.TD == 0 && b.TB == 200 {
			crossSeen = true
		}
	}
	if !crossSeen {
		t.Fatal("no boundary pairing the new segment with preloaded history")
	}
}

func TestPreloadValidation(t *testing.T) {
	_, emit := collect()
	x, _ := New(0.1, 1000, emit)
	if err := x.Preload([]segment.Segment{{Ts: 5, Vs: 0, Te: 5, Ve: 0}}); err == nil {
		t.Fatal("zero-length preload accepted")
	}
	x2, _ := New(0.1, 1000, emit)
	if err := x2.Preload([]segment.Segment{
		{Ts: 0, Vs: 0, Te: 100, Ve: 1},
		{Ts: 50, Vs: 0, Te: 150, Ve: 1},
	}); err == nil {
		t.Fatal("overlapping preload accepted")
	}
	x3, _ := New(0.1, 1000, emit)
	if err := x3.Push(segment.Segment{Ts: 0, Vs: 0, Te: 100, Ve: 1}); err != nil {
		t.Fatal(err)
	}
	if err := x3.Preload([]segment.Segment{{Ts: 100, Vs: 1, Te: 200, Ve: 2}}); err == nil {
		t.Fatal("preload on a non-fresh extractor accepted")
	}
}
