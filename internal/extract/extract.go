// Package extract implements Algorithm 1 of the paper: online feature
// extraction. As each data segment AB is finalized by the segmentation
// process, the extractor
//
//  1. emits the boundaries of AB's degenerate self-parallelogram (covering
//     events occurring within AB),
//  2. pairs AB with every previous data segment CD inside the time window
//     [t_B − w, t_A], truncating CD at the window start when it begins
//     earlier (lines 4–5 of Algorithm 1), and emits the ε-shifted boundary
//     corners selected by the Table 2 case analysis, and
//  3. evicts segments that have fallen entirely out of the window.
//
// Extraction is online: features are available for search as soon as the
// segment is produced.
package extract

import (
	"fmt"

	"segdiff/internal/feature"
	"segdiff/internal/segment"
)

// Stats counts extraction activity, including the Table 4 corner-case
// distribution (how many boundaries were stored with 1, 2 or 3 corners).
type Stats struct {
	Segments       int    // data segments consumed
	Pairs          int    // (CD, AB) pairs considered (incl. self-pairs)
	Boundaries     int    // boundaries emitted (drop + jump)
	CornerCount    [4]int // CornerCount[c] = boundaries stored with c corners
	CornersStored  int    // total corner points stored
	DropBoundaries int
	JumpBoundaries int
}

// AverageCorners returns the mean number of stored corners per boundary —
// the paper's "effectively two corner points" metric (≈2.13 at ε=0.2).
func (s Stats) AverageCorners() float64 {
	if s.Boundaries == 0 {
		return 0
	}
	return float64(s.CornersStored) / float64(s.Boundaries)
}

// Extractor consumes data segments in temporal order.
type Extractor struct {
	eps  float64
	w    int64
	emit func(feature.Boundary) error

	window []segment.Segment // previous segments, oldest first
	last   *segment.Segment  // most recent segment (for contiguity check)
	stats  Stats
}

// New returns an extractor with error tolerance eps (the ε used for
// shifting, i.e. the segmentation tolerance) and time window w. emit is
// called with every stored boundary.
func New(eps float64, w int64, emit func(feature.Boundary) error) (*Extractor, error) {
	if eps < 0 {
		return nil, fmt.Errorf("extract: negative epsilon %v", eps)
	}
	if w <= 0 {
		return nil, fmt.Errorf("extract: non-positive window %d", w)
	}
	if emit == nil {
		return nil, fmt.Errorf("extract: nil emit callback")
	}
	return &Extractor{eps: eps, w: w, emit: emit}, nil
}

// Stats returns a copy of the extraction counters.
func (x *Extractor) Stats() Stats { return x.stats }

// Push processes the next data segment. Segments must arrive in temporal
// order; gaps are allowed (a sensor outage splits the stream), overlap is
// not.
func (x *Extractor) Push(ab segment.Segment) error {
	if ab.Te <= ab.Ts {
		return fmt.Errorf("extract: non-positive segment duration %v", ab)
	}
	if x.last != nil && ab.Ts < x.last.Te {
		return fmt.Errorf("extract: segment %v overlaps previous ending at %d", ab, x.last.Te)
	}
	x.stats.Segments++

	// Within-segment events: the degenerate self-pair.
	self, err := feature.SelfPair(ab)
	if err != nil {
		return err
	}
	if err := x.emitBoundaries(self); err != nil {
		return err
	}
	x.stats.Pairs++

	// Algorithm 1: window [win.start, win.end] with win.end = t_A and
	// win.start = t_B − w.
	winStart := ab.Ts - x.w

	// Evict segments entirely before the window.
	keep := 0
	for _, cd := range x.window {
		if cd.Te > winStart {
			x.window[keep] = cd
			keep++
		}
	}
	x.window = x.window[:keep]

	for _, cd := range x.window {
		use := cd
		if use.Ts < winStart {
			// Truncate CD at the window start (Algorithm 1 line 4).
			use = segment.Segment{Ts: winStart, Vs: cd.Value(winStart), Te: cd.Te, Ve: cd.Ve}
		}
		if use.Te == use.Ts {
			continue // truncation consumed the whole segment
		}
		p, err := feature.NewParallelogram(use, ab)
		if err != nil {
			return err
		}
		x.stats.Pairs++
		if err := x.emitBoundaries(p); err != nil {
			return err
		}
	}

	x.window = append(x.window, ab)
	x.last = &ab
	return nil
}

func (x *Extractor) emitBoundaries(p feature.Parallelogram) error {
	bs, err := feature.ExtractBoundaries(p, x.eps)
	if err != nil {
		return err
	}
	for _, b := range bs {
		nc := len(b.Corners)
		if nc < 1 || nc > 3 {
			return fmt.Errorf("extract: boundary with %d corners", nc)
		}
		x.stats.Boundaries++
		x.stats.CornerCount[nc]++
		x.stats.CornersStored += nc
		if b.Kind == feature.Drop {
			x.stats.DropBoundaries++
		} else {
			x.stats.JumpBoundaries++
		}
		if err := x.emit(b); err != nil {
			return err
		}
	}
	return nil
}

// WindowLen reports how many previous segments are currently retained
// (used by tests to verify eviction).
func (x *Extractor) WindowLen() int { return len(x.window) }

// Preload seeds the window with already-processed segments (temporal
// order) without emitting any features. It is used when a store reopens:
// features for these segments are already persisted, but upcoming segments
// must still pair with them.
func (x *Extractor) Preload(segs []segment.Segment) error {
	if x.stats.Segments > 0 || len(x.window) > 0 {
		return fmt.Errorf("extract: Preload on a non-fresh extractor")
	}
	for _, g := range segs {
		if g.Te <= g.Ts {
			return fmt.Errorf("extract: non-positive segment duration %v", g)
		}
		if x.last != nil && g.Ts < x.last.Te {
			return fmt.Errorf("extract: preloaded segment %v overlaps previous", g)
		}
		x.window = append(x.window, g)
		gg := g
		x.last = &gg
	}
	return nil
}
