# Convenience targets mirroring the CI pipeline; see .github/workflows/ci.yml
# for the authoritative step list.

GO ?= go

.PHONY: all build test race lint lint-json vet cover

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive subset CI runs on every push.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Coverage gate CI enforces: internal/obs floor plus the module-wide
# ratchet against scripts/coverage_baseline.txt.
cover:
	./scripts/covergate.sh

# Run the segdifflint analyzer suite over the whole module. Contributors
# should run this before pushing; CI enforces a clean run.
lint:
	$(GO) run ./cmd/segdifflint ./...

# Same findings as machine-readable JSON (file, line, analyzer, message,
# ignore-directive status), for editors and CI annotation tooling.
lint-json:
	$(GO) run ./cmd/segdifflint -json ./...
