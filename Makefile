# Convenience targets mirroring the CI pipeline; see .github/workflows/ci.yml
# for the authoritative step list.

GO ?= go

.PHONY: all build test race lint lint-json vet cover serve-smoke

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive subset CI runs on every push.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Coverage gate CI enforces: internal/obs and internal/server floors
# plus the module-wide ratchet against scripts/coverage_baseline.txt.
cover:
	./scripts/covergate.sh

# End-to-end serving gate CI runs: boot segdiffd, ingest and query over
# HTTP, verify responses match direct Collection searches, drain.
serve-smoke:
	$(GO) run ./cmd/benchrunner -serve-smoke -days 5

# Run the segdifflint analyzer suite over the whole module. Contributors
# should run this before pushing; CI enforces a clean run.
lint:
	$(GO) run ./cmd/segdifflint ./...

# Same findings as machine-readable JSON (file, line, analyzer, message,
# ignore-directive status), for editors and CI annotation tooling.
lint-json:
	$(GO) run ./cmd/segdifflint -json ./...
