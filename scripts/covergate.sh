#!/usr/bin/env bash
# Coverage gate. Runs the short test suite with a merged coverage profile
# and fails when any of:
#   - internal/obs (the observability layer, which is cheap to cover and
#     easy to silently regress) drops below its 90% floor,
#   - internal/server (the request-handling surface of segdiffd, where
#     an uncovered branch is an unhandled request shape) drops below its
#     90% floor, or
#   - module-wide coverage regresses more than 2 points against the
#     committed baseline in scripts/coverage_baseline.txt.
# The baseline is a ratchet, not a mirror: raise it when coverage
# improves; the gate only stops silent backsliding.
#
# Usage: scripts/covergate.sh [profile-out]
set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE="${1:-coverage.out}"
OBS_FLOOR=90.0
SERVER_FLOOR=90.0
SLACK_PTS=2.0
BASELINE_FILE=scripts/coverage_baseline.txt

go test -short -count=1 -coverprofile="$PROFILE" ./... > /dev/null

total=$(go tool cover -func="$PROFILE" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')
obs=$(awk '/segdiff\/internal\/obs\// { stmts += $(NF-1); if ($NF > 0) covered += $(NF-1) }
           END { if (stmts == 0) print "0.0"; else printf "%.1f", covered * 100 / stmts }' "$PROFILE")
srv=$(awk '/segdiff\/internal\/server\// { stmts += $(NF-1); if ($NF > 0) covered += $(NF-1) }
           END { if (stmts == 0) print "0.0"; else printf "%.1f", covered * 100 / stmts }' "$PROFILE")
baseline=$(cat "$BASELINE_FILE")

echo "coverage: module total ${total}% (baseline ${baseline}%, slack ${SLACK_PTS}pt)"
echo "coverage: internal/obs ${obs}% (floor ${OBS_FLOOR}%)"
echo "coverage: internal/server ${srv}% (floor ${SERVER_FLOOR}%)"

fail=0
if awk -v got="$obs" -v floor="$OBS_FLOOR" 'BEGIN { exit !(got < floor) }'; then
    echo "FAIL: internal/obs coverage ${obs}% is below the ${OBS_FLOOR}% floor" >&2
    fail=1
fi
if awk -v got="$srv" -v floor="$SERVER_FLOOR" 'BEGIN { exit !(got < floor) }'; then
    echo "FAIL: internal/server coverage ${srv}% is below the ${SERVER_FLOOR}% floor" >&2
    fail=1
fi
if awk -v got="$total" -v base="$baseline" -v slack="$SLACK_PTS" 'BEGIN { exit !(got < base - slack) }'; then
    echo "FAIL: module coverage ${total}% regressed more than ${SLACK_PTS}pt below the ${baseline}% baseline" >&2
    fail=1
fi
exit $fail
