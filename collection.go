package segdiff

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Collection manages one Index per sensor, like the 25-sensor Cold Air
// Drainage transect of the paper. Searches fan out across sensors on a
// bounded worker pool (Options.SearchConcurrency workers); per-sensor
// results always come back in sensor-name order regardless of completion
// order.
type Collection struct {
	mu      sync.Mutex
	dir     string // "" = in-memory; set once at open
	opts    Options
	sensors map[string]*Index // guarded by mu
	closed  bool              // guarded by mu
}

var sensorNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]*$`)

// OpenCollection opens (creating if needed) a directory of per-sensor
// indexes. Existing sensors are discovered and opened lazily.
func OpenCollection(dir string, opts Options) (*Collection, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segdiff: create collection dir: %w", err)
	}
	return &Collection{dir: dir, opts: opts, sensors: map[string]*Index{}}, nil
}

// NewMemoryCollection returns an in-memory collection.
func NewMemoryCollection(opts Options) *Collection {
	return &Collection{opts: opts, sensors: map[string]*Index{}}
}

// Sensor returns (opening or creating) the index for the named sensor.
func (c *Collection) Sensor(name string) (*Index, error) {
	if !sensorNameRE.MatchString(name) {
		return nil, fmt.Errorf("segdiff: invalid sensor name %q", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("segdiff: collection is closed")
	}
	if ix, ok := c.sensors[name]; ok {
		return ix, nil
	}
	var ix *Index
	var err error
	if c.dir == "" {
		ix, err = NewMemory(c.opts)
	} else {
		ix, err = Open(filepath.Join(c.dir, name), c.opts)
	}
	if err != nil {
		return nil, err
	}
	c.sensors[name] = ix
	return ix, nil
}

// Names lists all sensors: the opened ones plus, for on-disk collections,
// any subdirectory holding an index not yet opened.
func (c *Collection) Names() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := map[string]bool{}
	for name := range c.sensors {
		set[name] = true
	}
	if c.dir != "" {
		entries, err := os.ReadDir(c.dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() && sensorNameRE.MatchString(e.Name()) {
				set[e.Name()] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Options returns the options the collection was opened with (defaults
// not yet resolved — a zero Epsilon or Window means the engine default).
// Servers use it to validate request parameters before touching the
// engine.
func (c *Collection) Options() Options { return c.opts }

// ValidSensorName reports whether name is acceptable as a sensor name.
func ValidSensorName(name string) bool { return sensorNameRE.MatchString(name) }

// SensorBatch is one sensor's share of a multi-sensor ingest batch.
type SensorBatch struct {
	Sensor string  `json:"sensor"`
	Points []Point `json:"points"`
}

// AppendAll ingests batches for many sensors concurrently: each sensor's
// points are appended and committed by one worker (per-sensor order is
// preserved; batches naming the same sensor are concatenated in input
// order), with at most Options.IngestConcurrency sensors in flight
// (default GOMAXPROCS). Within each sensor the full batched write path
// applies — buffered rows, sorted per-index runs, one group commit — so a
// transect of sensors ingests with one fsync per sensor. The first error
// aborts that sensor's batch and is returned; other sensors' batches are
// unaffected and commit normally.
func (c *Collection) AppendAll(batches []SensorBatch) error {
	// Group by sensor, preserving first-appearance order.
	order := make([]string, 0, len(batches))
	grouped := map[string][]Point{}
	for _, b := range batches {
		if _, ok := grouped[b.Sensor]; !ok {
			order = append(order, b.Sensor)
		}
		grouped[b.Sensor] = append(grouped[b.Sensor], b.Points...)
	}
	workers := c.opts.IngestConcurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) {
		workers = len(order)
	}
	if workers <= 0 {
		return nil
	}

	errs := make([]error, len(order))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				name := order[i]
				ix, err := c.Sensor(name)
				if err != nil {
					errs[i] = err
					continue
				}
				if err := ix.AppendPoints(grouped[name]); err != nil {
					errs[i] = fmt.Errorf("segdiff: sensor %s: %w", name, err)
				}
			}
		}()
	}
	for i := range order {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SensorMatches pairs a sensor name with its matches.
type SensorMatches struct {
	Sensor  string  `json:"sensor"`
	Matches []Match `json:"matches"`
}

// ErrUnknownSensor is wrapped by searches whose sensor filter names a
// sensor the collection does not hold.
var ErrUnknownSensor = errors.New("segdiff: unknown sensor")

// Drops searches every sensor concurrently for drops of at least |v|
// within span, returning per-sensor results sorted by sensor name.
func (c *Collection) Drops(span time.Duration, v float64) ([]SensorMatches, error) {
	return c.DropsContext(context.Background(), span, v)
}

// Jumps is the symmetric multi-sensor jump search.
func (c *Collection) Jumps(span time.Duration, v float64) ([]SensorMatches, error) {
	return c.JumpsContext(context.Background(), span, v)
}

// DropsContext searches the named sensors — every sensor when none are
// given — under a request context. The context is consulted before each
// sensor's search is dispatched and between the scan units of each
// search, so an expired deadline aborts the fanout promptly with an
// error wrapping ctx.Err(). A filter naming a sensor the collection
// does not hold fails with ErrUnknownSensor.
func (c *Collection) DropsContext(ctx context.Context, span time.Duration, v float64, sensors ...string) ([]SensorMatches, error) {
	return c.fanout(ctx, sensors, func(ctx context.Context, ix *Index) ([]Match, error) {
		return ix.DropsContext(ctx, span, v)
	})
}

// JumpsContext is the context-aware, sensor-filtered multi-sensor jump
// search; see DropsContext.
func (c *Collection) JumpsContext(ctx context.Context, span time.Duration, v float64, sensors ...string) ([]SensorMatches, error) {
	return c.fanout(ctx, sensors, func(ctx context.Context, ix *Index) ([]Match, error) {
		return ix.JumpsContext(ctx, span, v)
	})
}

// searchNames resolves a sensor filter: nil/empty selects every sensor;
// otherwise each requested name must exist and the result is the sorted,
// deduplicated filter.
func (c *Collection) searchNames(filter []string) ([]string, error) {
	names, err := c.Names()
	if err != nil {
		return nil, err
	}
	if len(filter) == 0 {
		return names, nil
	}
	have := make(map[string]bool, len(names))
	for _, name := range names {
		have[name] = true
	}
	set := make(map[string]bool, len(filter))
	out := make([]string, 0, len(filter))
	for _, name := range filter {
		if !have[name] {
			return nil, fmt.Errorf("%w %q", ErrUnknownSensor, name)
		}
		if !set[name] {
			set[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// fanout runs search against the filtered sensors on a bounded worker
// pool (Options.SearchConcurrency workers, default GOMAXPROCS) instead
// of one goroutine per sensor, so a thousand-sensor collection does not
// explode into a thousand concurrent searches.
func (c *Collection) fanout(ctx context.Context, filter []string, search func(context.Context, *Index) ([]Match, error)) ([]SensorMatches, error) {
	names, err := c.searchNames(filter)
	if err != nil {
		return nil, err
	}
	workers := c.opts.SearchConcurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}

	type job struct {
		i  int
		ix *Index
	}
	out := make([]SensorMatches, len(names))
	errs := make([]error, len(names))
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				// A sensor whose search has not started when the request
				// context dies is skipped instead of searched, so the
				// fanout drains quickly once the deadline passes.
				if err := ctx.Err(); err != nil {
					errs[j.i] = fmt.Errorf("segdiff: sensor %s: search canceled: %w", names[j.i], err)
					continue
				}
				ms, err := search(ctx, j.ix)
				out[j.i] = SensorMatches{Sensor: names[j.i], Matches: ms}
				errs[j.i] = err
			}
		}()
	}
	var openErr error
	for i, name := range names {
		ix, err := c.Sensor(name)
		if err != nil {
			openErr = err
			break
		}
		jobs <- job{i: i, ix: ix}
	}
	close(jobs)
	wg.Wait()
	if openErr != nil {
		return nil, openErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Finish flushes every opened sensor index.
func (c *Collection) Finish() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, ix := range c.sensors {
		if err := ix.Finish(); err != nil {
			return fmt.Errorf("segdiff: finish sensor %s: %w", name, err)
		}
	}
	return nil
}

// Close closes every opened sensor index.
func (c *Collection) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for name, ix := range c.sensors {
		if err := ix.Close(); err != nil {
			return fmt.Errorf("segdiff: close sensor %s: %w", name, err)
		}
	}
	return nil
}
