package segdiff

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// Collection manages one Index per sensor, like the 25-sensor Cold Air
// Drainage transect of the paper. Searches fan out across sensors
// concurrently.
type Collection struct {
	mu      sync.Mutex
	dir     string // "" = in-memory
	opts    Options
	sensors map[string]*Index
	closed  bool
}

var sensorNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]*$`)

// OpenCollection opens (creating if needed) a directory of per-sensor
// indexes. Existing sensors are discovered and opened lazily.
func OpenCollection(dir string, opts Options) (*Collection, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segdiff: create collection dir: %w", err)
	}
	return &Collection{dir: dir, opts: opts, sensors: map[string]*Index{}}, nil
}

// NewMemoryCollection returns an in-memory collection.
func NewMemoryCollection(opts Options) *Collection {
	return &Collection{opts: opts, sensors: map[string]*Index{}}
}

// Sensor returns (opening or creating) the index for the named sensor.
func (c *Collection) Sensor(name string) (*Index, error) {
	if !sensorNameRE.MatchString(name) {
		return nil, fmt.Errorf("segdiff: invalid sensor name %q", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("segdiff: collection is closed")
	}
	if ix, ok := c.sensors[name]; ok {
		return ix, nil
	}
	var ix *Index
	var err error
	if c.dir == "" {
		ix, err = NewMemory(c.opts)
	} else {
		ix, err = Open(filepath.Join(c.dir, name), c.opts)
	}
	if err != nil {
		return nil, err
	}
	c.sensors[name] = ix
	return ix, nil
}

// Names lists all sensors: the opened ones plus, for on-disk collections,
// any subdirectory holding an index not yet opened.
func (c *Collection) Names() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := map[string]bool{}
	for name := range c.sensors {
		set[name] = true
	}
	if c.dir != "" {
		entries, err := os.ReadDir(c.dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() && sensorNameRE.MatchString(e.Name()) {
				set[e.Name()] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// SensorMatches pairs a sensor name with its matches.
type SensorMatches struct {
	Sensor  string
	Matches []Match
}

// Drops searches every sensor concurrently for drops of at least |v|
// within span, returning per-sensor results sorted by sensor name.
func (c *Collection) Drops(span time.Duration, v float64) ([]SensorMatches, error) {
	return c.fanout(span, v, func(ix *Index) ([]Match, error) { return ix.Drops(span, v) })
}

// Jumps is the symmetric multi-sensor jump search.
func (c *Collection) Jumps(span time.Duration, v float64) ([]SensorMatches, error) {
	return c.fanout(span, v, func(ix *Index) ([]Match, error) { return ix.Jumps(span, v) })
}

func (c *Collection) fanout(span time.Duration, v float64, search func(*Index) ([]Match, error)) ([]SensorMatches, error) {
	names, err := c.Names()
	if err != nil {
		return nil, err
	}
	out := make([]SensorMatches, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		ix, err := c.Sensor(name)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i int, name string, ix *Index) {
			defer wg.Done()
			ms, err := search(ix)
			out[i] = SensorMatches{Sensor: name, Matches: ms}
			errs[i] = err
		}(i, name, ix)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Finish flushes every opened sensor index.
func (c *Collection) Finish() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, ix := range c.sensors {
		if err := ix.Finish(); err != nil {
			return fmt.Errorf("segdiff: finish sensor %s: %w", name, err)
		}
	}
	return nil
}

// Close closes every opened sensor index.
func (c *Collection) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for name, ix := range c.sensors {
		if err := ix.Close(); err != nil {
			return fmt.Errorf("segdiff: close sensor %s: %w", name, err)
		}
	}
	return nil
}
