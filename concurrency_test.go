package segdiff

// Concurrency coverage for the parallel read path: stress tests that must
// pass under -race, result-identity checks between sequential and parallel
// search execution, and the Benchmark*Parallel targets quoted in PR
// descriptions (shared-Index throughput and multi-sensor fanout).

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// buildIndex ingests n deterministic noisy points (seeded drops included)
// into a fresh in-memory index with the given options.
func buildIndex(t testing.TB, opts Options, seed int64, n int) *Index {
	t.Helper()
	ix, err := NewMemory(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AppendPoints(points(seed, n)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Finish(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// TestConcurrentSearchStress hammers one shared Index with concurrent
// Drops, Jumps and Stats calls and checks every result against the
// single-threaded answer. Run with -race.
func TestConcurrentSearchStress(t *testing.T) {
	ix := buildIndex(t, Options{Epsilon: 0.2, Window: 8 * time.Hour}, 7, 1500)

	wantDrops, err := ix.Drops(30*time.Minute, -4)
	if err != nil {
		t.Fatal(err)
	}
	wantJumps, err := ix.Jumps(30*time.Minute, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantDrops) == 0 {
		t.Fatal("baseline search found no drops; stress test would be vacuous")
	}

	const goroutines = 8
	const iters = 6
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 3 {
				case 0:
					got, err := ix.Drops(30*time.Minute, -4)
					if err != nil {
						errCh <- err
						return
					}
					if !reflect.DeepEqual(got, wantDrops) {
						errCh <- fmt.Errorf("goroutine %d: concurrent Drops diverged: got %d matches, want %d", g, len(got), len(wantDrops))
						return
					}
				case 1:
					got, err := ix.Jumps(30*time.Minute, 4)
					if err != nil {
						errCh <- err
						return
					}
					if !reflect.DeepEqual(got, wantJumps) {
						errCh <- fmt.Errorf("goroutine %d: concurrent Jumps diverged", g)
						return
					}
				case 2:
					st, err := ix.Stats()
					if err != nil {
						errCh <- err
						return
					}
					if st.FeatureRows <= 0 || st.DiskBytes() <= 0 {
						errCh <- fmt.Errorf("goroutine %d: corrupt stats %+v", g, st)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestWriterConcurrentWithReaders runs a single ingesting goroutine
// against a crowd of searching goroutines. Writes must simply serialize
// against reads: every search either sees a consistent snapshot or blocks,
// and never errors or returns malformed matches.
func TestWriterConcurrentWithReaders(t *testing.T) {
	ix, err := NewMemory(Options{Epsilon: 0.2, Window: 8 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	pts := points(11, 1000)
	// Seed enough history that searches have work to do from the start.
	if err := ix.AppendPoints(pts[:400]); err != nil {
		t.Fatal(err)
	}

	// Each reader runs a fixed number of queries rather than free-running
	// until the writer finishes: every commit of the writer queues behind
	// the in-flight reads, so unbounded re-querying starves the ingest for
	// the whole test (minutes under the race detector).
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				ms, err := ix.Drops(10*time.Minute, -6)
				if err != nil {
					errCh <- fmt.Errorf("reader: %w", err)
					return
				}
				for _, m := range ms {
					if m.From.Start > m.From.End || m.To.Start > m.To.End {
						errCh <- fmt.Errorf("reader: malformed match %+v", m)
						return
					}
				}
			}
		}()
	}

	// The single writer: batches of appends, each committed with Sync.
	for i := 400; i < len(pts); i += 300 {
		end := i + 300
		if end > len(pts) {
			end = len(pts)
		}
		if err := ix.AppendPoints(pts[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Finish(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// After the writer finished, readers and writer agree on the world.
	ms, err := ix.Drops(time.Hour, -4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no drops found after concurrent ingest of a droppy series")
	}
}

// TestParallelMatchesSequential verifies the tentpole's correctness
// condition: a search with SearchConcurrency 1 (fully sequential union
// evaluation) and one with a wide worker pool return identical match sets
// across a grid of queries, for both kinds.
func TestParallelMatchesSequential(t *testing.T) {
	seq := buildIndex(t, Options{Epsilon: 0.2, Window: 8 * time.Hour, SearchConcurrency: 1}, 23, 2000)
	par := buildIndex(t, Options{Epsilon: 0.2, Window: 8 * time.Hour, SearchConcurrency: 8}, 23, 2000)

	spans := []time.Duration{10 * time.Minute, time.Hour}
	for _, span := range spans {
		for _, v := range []float64{-1, -4} {
			s, err := seq.Drops(span, v)
			if err != nil {
				t.Fatal(err)
			}
			p, err := par.Drops(span, v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s, p) {
				t.Fatalf("Drops(%v, %v): sequential %d matches, parallel %d matches", span, v, len(s), len(p))
			}
		}
		for _, v := range []float64{1, 4} {
			s, err := seq.Jumps(span, v)
			if err != nil {
				t.Fatal(err)
			}
			p, err := par.Jumps(span, v)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s, p) {
				t.Fatalf("Jumps(%v, %v): sequential and parallel diverge", span, v)
			}
		}
	}
}

// TestCollectionFanoutBounded checks the bounded multi-sensor fanout still
// returns complete, name-ordered results when the pool is smaller than,
// equal to, and larger than the sensor count.
func TestCollectionFanoutBounded(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		c := NewMemoryCollection(Options{Epsilon: 0.2, Window: 8 * time.Hour, SearchConcurrency: workers})
		const sensors = 5
		for s := 0; s < sensors; s++ {
			ix, err := c.Sensor(fmt.Sprintf("s%02d", s))
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.AppendPoints(points(int64(s+1), 800)); err != nil {
				t.Fatal(err)
			}
			if err := ix.Finish(); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.Drops(time.Hour, -3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != sensors {
			t.Fatalf("workers=%d: got %d sensor results, want %d", workers, len(res), sensors)
		}
		total := 0
		for i, sm := range res {
			if want := fmt.Sprintf("s%02d", i); sm.Sensor != want {
				t.Fatalf("workers=%d: result %d is sensor %q, want %q", workers, i, sm.Sensor, want)
			}
			total += len(sm.Matches)
		}
		if total == 0 {
			t.Fatalf("workers=%d: no matches across %d droppy sensors", workers, sensors)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// benchIndex builds the shared benchmark index (kept small: one search on
// it takes tens of milliseconds).
func benchIndex(b *testing.B, opts Options) *Index {
	return buildIndex(b, opts, 42, 2000)
}

// BenchmarkIndexDropsSerial is the single-client search latency baseline.
func BenchmarkIndexDropsSerial(b *testing.B) {
	ix := benchIndex(b, Options{Epsilon: 0.2, Window: 8 * time.Hour})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Drops(30*time.Minute, -4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexDropsSequentialUnion pins SearchConcurrency to 1,
// approximating the pre-parallel engine: one client, union branches
// evaluated one after another.
func BenchmarkIndexDropsSequentialUnion(b *testing.B) {
	ix := benchIndex(b, Options{Epsilon: 0.2, Window: 8 * time.Hour, SearchConcurrency: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Drops(30*time.Minute, -4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexDropsParallel measures aggregate search throughput with
// GOMAXPROCS clients hammering one shared Index — the workload the
// single-lock engine serialized completely.
func BenchmarkIndexDropsParallel(b *testing.B) {
	ix := benchIndex(b, Options{Epsilon: 0.2, Window: 8 * time.Hour})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := ix.Drops(30*time.Minute, -4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCollectionDropsParallel measures the multi-sensor fanout: one
// Drops call searching every sensor of a collection through the bounded
// worker pool.
func BenchmarkCollectionDropsParallel(b *testing.B) {
	c := NewMemoryCollection(Options{Epsilon: 0.2, Window: 8 * time.Hour})
	defer c.Close()
	for s := 0; s < 6; s++ {
		ix, err := c.Sensor(fmt.Sprintf("s%02d", s))
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.AppendPoints(points(int64(s+1), 2000)); err != nil {
			b.Fatal(err)
		}
		if err := ix.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Drops(30*time.Minute, -4); err != nil {
			b.Fatal(err)
		}
	}
}
