// cadexplorer reproduces the paper's motivating workflow: biologists
// exploring a season of Cold Air Drainage transect data with ad-hoc
// queries at different thresholds — "a drop of no less than 3 degrees
// within 1 hour" first, then probing steeper and gentler events — without
// re-processing the raw data between questions.
package main

import (
	"fmt"
	"log"
	"time"

	"segdiff"
	"segdiff/internal/synth"
)

func main() {
	const sensors = 5
	fmt.Printf("generating %d sensors × 60 days of synthetic CAD transect data...\n", sensors)
	series, events, err := synth.GenerateTransect(synth.Config{
		Seed:     42,
		Duration: 60 * synth.SecondsPerDay,
	}, sensors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the generator injected %d cold-air-drainage events\n\n", len(events))

	col := segdiff.NewMemoryCollection(segdiff.Options{Epsilon: 0.2, Window: 8 * time.Hour})
	// Close commits any pending batch, so its error is the difference
	// between durable and silently dropped data - always check it.
	defer func() {
		if err := col.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	start := time.Now()
	for i, s := range series {
		ix, err := col.Sensor(fmt.Sprintf("node%02d", i))
		if err != nil {
			log.Fatal(err)
		}
		pts := make([]segdiff.Point, s.Len())
		for j, p := range s.Points() {
			pts[j] = segdiff.Point{Time: p.T, Value: p.V}
		}
		// The paper preprocesses with robust smoothing to drop anomalies.
		clean, err := segdiff.Denoise(pts, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := ix.AppendPoints(clean); err != nil {
			log.Fatal(err)
		}
	}
	if err := col.Finish(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d sensors in %v\n\n", sensors, time.Since(start).Round(time.Millisecond))

	// The exploratory session: successive ad-hoc thresholds.
	queries := []struct {
		span time.Duration
		v    float64
		note string
	}{
		{time.Hour, -3, "the biologists' working definition of a CAD event"},
		{30 * time.Minute, -3, "fast events only"},
		{time.Hour, -6, "severe events"},
		{4 * time.Hour, -8, "deep slow drainage"},
	}
	for _, q := range queries {
		t0 := time.Now()
		res, err := col.Drops(q.span, q.v)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, r := range res {
			total += len(r.Matches)
		}
		fmt.Printf("drop ≥ %.0f°C within %-7v → %4d periods across %d sensors in %7v   (%s)\n",
			-q.v, q.span, total, len(res), time.Since(t0).Round(time.Microsecond), q.note)
	}

	// Drill into one sensor: show the first few matched periods next to
	// the compressed representation, like the paper's Figure 1(c).
	ix, err := col.Sensor("node02")
	if err != nil {
		log.Fatal(err)
	}
	matches, err := ix.Drops(time.Hour, -3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode02: first matched periods for (1h, −3°C):\n")
	for i, m := range matches {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(matches)-5)
			break
		}
		fmt.Printf("  drop starting day %d %s–%s, ending %s–%s\n",
			m.From.Start/86400, clock(m.From.Start), clock(m.From.End),
			clock(m.To.Start), clock(m.To.End))
	}
	st, err := ix.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode02 storage: %d points → %d segments (r=%.1f), features %d KiB + indexes %d KiB\n",
		st.Points, st.Segments, st.CompressionRate, st.FeatureBytes/1024, st.IndexBytes/1024)
}

func clock(t int64) string {
	s := t % 86400
	return fmt.Sprintf("%02d:%02d", s/3600, (s%3600)/60)
}
