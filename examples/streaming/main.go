// streaming demonstrates the online nature of the framework (paper
// Section 4.3.2): observations flow in continuously, features are
// extracted as segments close, and searches over freshly ingested data
// answer immediately — "there is no considerable delay for users to search
// new data".
package main

import (
	"fmt"
	"log"
	"time"

	"segdiff"
	"segdiff/internal/synth"
)

func main() {
	const sensors = 3
	series, _, err := synth.GenerateTransect(synth.Config{
		Seed:     11,
		Duration: 14 * synth.SecondsPerDay,
	}, sensors)
	if err != nil {
		log.Fatal(err)
	}

	col := segdiff.NewMemoryCollection(segdiff.Options{Epsilon: 0.2, Window: 8 * time.Hour})
	// Close commits any pending batch, so its error is the difference
	// between durable and silently dropped data - always check it.
	defer func() {
		if err := col.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	idx := make([]*segdiff.Index, sensors)
	for i := range idx {
		ix, err := col.Sensor(fmt.Sprintf("s%d", i))
		if err != nil {
			log.Fatal(err)
		}
		idx[i] = ix
	}

	// Replay the two weeks day by day, as if the transect uploaded a daily
	// batch, searching after every upload.
	points := series[0].Len()
	perDay := points * int(synth.SecondsPerDay) / int(series[0].Span())
	for day := 0; day*perDay < points; day++ {
		lo := day * perDay
		hi := min(lo+perDay, points)
		for i, s := range series {
			for _, p := range s.Points()[lo:hi] {
				if err := idx[i].Append(p.T, p.V); err != nil {
					log.Fatal(err)
				}
			}
			if err := idx[i].Sync(); err != nil { // commit the day's batch
				log.Fatal(err)
			}
		}
		t0 := time.Now()
		res, err := col.Drops(time.Hour, -3)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, r := range res {
			total += len(r.Matches)
		}
		fmt.Printf("after day %2d: %3d drop periods known across %d sensors (query %v)\n",
			day+1, total, sensors, time.Since(t0).Round(time.Microsecond))
	}

	if err := col.Finish(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstream closed; indexes remain queryable")
}
