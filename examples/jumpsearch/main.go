// jumpsearch demonstrates the symmetric jump search of the paper on a
// finance-style series: find every period where a price rose by at least
// V within T — the same parallelogram machinery with the query region
// mirrored above the Δt axis.
package main

import (
	"fmt"
	"log"
	"time"

	"segdiff"
	"segdiff/internal/synth"
)

func main() {
	// A week of minutely prices as a random walk (deterministic seed).
	// Random walks barely compress, so this is the framework's worst case:
	// ε trades answer tightness for index size much more visibly than on
	// smooth sensor data.
	series, err := synth.RandomWalk(7, 10_000, 60, 100, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := series.MinMax()
	fmt.Printf("random walk: %d minutely points, range [%.1f, %.1f]\n", series.Len(), lo, hi)

	// Random walks are the framework's worst case for compression, so a
	// generous ε is the right trade: results stay exact up to 2ε = 2 price
	// units while the index shrinks by an order of magnitude.
	ix, err := segdiff.NewMemory(segdiff.Options{
		Epsilon: 1.0,
		Window:  4 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Close commits any pending batch, so its error is the difference
	// between durable and silently dropped data - always check it.
	defer func() {
		if err := ix.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	start := time.Now()
	for _, p := range series.Points() {
		if err := ix.Append(p.T, p.V); err != nil {
			log.Fatal(err)
		}
	}
	if err := ix.Finish(); err != nil {
		log.Fatal(err)
	}
	st, err := ix.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed in %v: %d segments (r=%.1f), %d feature rows\n\n",
		time.Since(start).Round(time.Millisecond), st.Segments, st.CompressionRate, st.FeatureRows)

	for _, q := range []struct {
		span time.Duration
		v    float64
	}{
		{time.Hour, 4},
		{2 * time.Hour, 6},
		{4 * time.Hour, 8},
	} {
		t0 := time.Now()
		ups, err := ix.Jumps(q.span, q.v)
		if err != nil {
			log.Fatal(err)
		}
		downs, err := ix.Drops(q.span, -q.v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("±%.0f within %-5v → %4d rallies, %4d sell-offs (both in %v)\n",
			q.v, q.span, len(ups), len(downs), time.Since(t0).Round(time.Microsecond))
	}

	// Show the sharpest rally window found at the tightest threshold.
	ups, err := ix.Jumps(time.Hour, 4)
	if err != nil {
		log.Fatal(err)
	}
	if len(ups) > 0 {
		m := ups[0]
		fmt.Printf("\nfirst rally: rise begins in minutes [%d, %d] and completes in [%d, %d]\n",
			m.From.Start/60, m.From.End/60, m.To.Start/60, m.To.End/60)
	}
}
