// Quickstart: build an in-memory drop-search index over one day of
// temperature readings and ask the paper's canonical question — where did
// the temperature fall by at least 3 °C within one hour?
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"segdiff"
)

func main() {
	ix, err := segdiff.NewMemory(segdiff.Options{
		Epsilon: 0.2,           // results exact up to 2ε = 0.4 °C
		Window:  8 * time.Hour, // largest span we will ever query
	})
	if err != nil {
		log.Fatal(err)
	}
	// Close commits any pending batch, so its error is the difference
	// between durable and silently dropped data - always check it.
	defer func() {
		if err := ix.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	// One day of 5-minute samples: a smooth diurnal curve with a sharp
	// cold-air-drainage event before dawn (04:00–04:40).
	for i := 0; i < 288; i++ {
		t := int64(i) * 300
		v := 10 + 6*math.Sin(2*math.Pi*(float64(t)/86400-0.375))
		if t >= 4*3600 && t < 4*3600+2400 {
			v -= 5 * float64(t-4*3600) / 2400 // 5 °C drop over 40 min
		} else if t >= 4*3600+2400 && t < 8*3600 {
			v -= 5 * (1 - float64(t-4*3600-2400)/float64(8*3600-4*3600-2400))
		}
		if err := ix.Append(t, v); err != nil {
			log.Fatal(err)
		}
	}
	if err := ix.Finish(); err != nil {
		log.Fatal(err)
	}

	matches, err := ix.Drops(time.Hour, -3) // ≥3 °C drop within 1 h
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d period(s) with a ≥3°C drop within 1h:\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  drop starts in [%s, %s] and ends in [%s, %s]\n",
			clock(m.From.Start), clock(m.From.End), clock(m.To.Start), clock(m.To.End))
	}

	st, err := ix.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d points compressed into %d segments (r=%.1f), %d feature rows\n",
		st.Points, st.Segments, st.CompressionRate, st.FeatureRows)
}

func clock(t int64) string {
	return fmt.Sprintf("%02d:%02d", t/3600, (t%3600)/60)
}
