package segdiff_test

import (
	"fmt"
	"log"
	"time"

	"segdiff"
)

// ExampleIndex demonstrates the core workflow: ingest a series online,
// then ask where it dropped by at least 4 units within 30 minutes.
func ExampleIndex() {
	ix, err := segdiff.NewMemory(segdiff.Options{
		Epsilon: 0.1,
		Window:  2 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	// A flat signal with one sharp drop: 10 → 4 between t=3000 and t=4200.
	for i := 0; i < 40; i++ {
		t := int64(i) * 300
		v := 10.0
		switch {
		case t >= 3000 && t < 4200:
			v = 10 - 6*float64(t-3000)/1200
		case t >= 4200:
			v = 4
		}
		if err := ix.Append(t, v); err != nil {
			log.Fatal(err)
		}
	}
	if err := ix.Finish(); err != nil {
		log.Fatal(err)
	}

	matches, err := ix.Drops(30*time.Minute, -4)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("drop starts in [%d,%d], ends in [%d,%d]\n",
			m.From.Start, m.From.End, m.To.Start, m.To.End)
	}
	// Every pair of periods bracketing a ≥4-unit fall is reported: the
	// drop can start on the flat prefix (its end is within T of the ramp)
	// or on the ramp itself, and end on the ramp or the flat suffix.
	//
	// Output:
	// drop starts in [0,3000], ends in [3000,4200]
	// drop starts in [0,3000], ends in [4200,11700]
	// drop starts in [3000,4200], ends in [3000,4200]
	// drop starts in [3000,4200], ends in [4200,11700]
}
