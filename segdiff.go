// Package segdiff is a library for searching for drops (and jumps) in
// sensor time series, reproducing the SegDiff framework of Chen, Cho and
// Hansen, "On the brink: Searching for drops in sensor data" (EDBT 2008).
//
// A drop search asks: at which periods in history did the signal fall by
// at least |V| units within a time span of at most T? SegDiff answers such
// ad-hoc queries quickly by
//
//  1. compressing the series online into a piecewise linear approximation
//     with maximum error ε/2,
//  2. summarizing all potential events between every pair of nearby
//     segments as a parallelogram in (Δt, Δv) feature space, storing only
//     the ε-shifted boundary corners needed for intersection tests, and
//  3. translating each search into standard relational range queries over
//     B-tree-indexed feature tables (served by an embedded storage engine
//     written for this library).
//
// Results come with the paper's Theorem 1 guarantee: no true event is
// missed, and every reported period contains an event within 2ε of the
// requested threshold. Events are defined on the linear-interpolation
// model of the signal, so drops that straddle sampling instants are found
// too.
//
// # Quick start
//
//	ix, err := segdiff.NewMemory(segdiff.Options{Epsilon: 0.2, Window: 8 * time.Hour})
//	...
//	for _, p := range observations {
//		ix.Append(p.Time, p.Value) // online ingest
//	}
//	ix.Finish()
//	matches, err := ix.Drops(time.Hour, -3) // ≥3-unit drop within 1 hour
//	for _, m := range matches {
//		fmt.Printf("drop starts in [%d,%d], ends in [%d,%d]\n",
//			m.From.Start, m.From.End, m.To.Start, m.To.End)
//	}
//
// Use Open for a durable on-disk index and OpenCollection to manage one
// index per sensor.
//
// # Concurrency
//
// Searches are safe to issue from any number of goroutines and run in
// parallel end to end: the embedded engine serves queries under a shared
// read lock, its buffer pool admits concurrent readers, and each search's
// union of point and line queries is itself evaluated on a bounded worker
// pool. Options.SearchConcurrency tunes the fan-out (default GOMAXPROCS).
//
// The write path is batched: Append buffers rows in memory and Sync (or
// Finish/Close) pushes them through the engine in bulk — one writer-lock
// acquisition per table, each secondary index applied as a sorted run on
// its own worker (Options.IngestConcurrency), and one WAL group commit, so
// a whole batch costs a single fsync. Ingestion into one Index (Append,
// Sync, Finish, Prune) must stay single-goroutine; it blocks searches only
// for the duration of each write. A Collection ingests many sensors in
// parallel via AppendAll.
package segdiff

import (
	"context"
	"errors"
	"fmt"
	"time"

	"segdiff/internal/core"
	"segdiff/internal/feature"
	"segdiff/internal/smooth"
	"segdiff/internal/storage/sqlmini"
	"segdiff/internal/timeseries"
)

// Point is one observation: a value sampled at a Unix-style timestamp in
// seconds (any integral time unit works as long as it is consistent).
type Point struct {
	Time  int64   `json:"t"`
	Value float64 `json:"v"`
}

// Interval is a closed time interval [Start, End].
type Interval struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t int64) bool { return iv.Start <= t && t <= iv.End }

// Match is one search result: the event starts somewhere in From and ends
// somewhere in To (the paper's tuple ((t_D, t_C), (t_B, t_A))). From and
// To are endpoints of data segments of the underlying piecewise linear
// approximation; a matched period typically contains one or more events.
type Match struct {
	From Interval `json:"from"`
	To   Interval `json:"to"`
}

// Options configures an Index.
type Options struct {
	// Epsilon is the approximation tolerance ε in value units
	// (default 0.2). Larger ε compresses more and answers faster; results
	// stay exact up to 2ε.
	Epsilon float64
	// Window is the longest time span searches will ever use
	// (default 8 h). Queries require T ≤ Window.
	Window time.Duration
	// CachePages is the buffer-pool capacity per storage file, in 4 KiB
	// pages (default 1024).
	CachePages int
	// SearchConcurrency bounds the read-path parallelism (default
	// runtime.GOMAXPROCS): the number of union branches (point and line
	// queries) one search evaluates concurrently, and the number of
	// sensors a Collection searches concurrently. Set it to 1 for fully
	// sequential searches; it never affects results, only latency.
	SearchConcurrency int
	// IngestConcurrency bounds the write-path parallelism (default
	// runtime.GOMAXPROCS): the number of secondary indexes one batch
	// commit updates concurrently, and the number of sensors a Collection
	// ingests concurrently in AppendAll. Set it to 1 for fully sequential
	// ingestion; it never affects stored bytes, only throughput.
	IngestConcurrency int
}

func (o Options) toCore() core.Options {
	return core.Options{
		Epsilon: o.Epsilon,
		Window:  int64(o.Window / time.Second),
		DB: sqlmini.Options{
			PoolPages:    o.CachePages,
			UnionWorkers: o.SearchConcurrency,
			WriteWorkers: o.IngestConcurrency,
		},
	}
}

// Index is a drop/jump search index over a single time series (one
// sensor). It is safe for concurrent searches, which execute genuinely in
// parallel: the storage engine serves them under a shared read lock and
// splits each search's union of point and line queries across a bounded
// worker pool (Options.SearchConcurrency). Ingestion must be
// single-goroutine; an Append or Sync concurrent with searches simply
// blocks on the engine's writer lock and never corrupts results.
type Index struct {
	st *core.Store
}

// Open opens (creating or resuming) an on-disk index in dir.
func Open(dir string, opts Options) (*Index, error) {
	st, err := core.Open(dir, opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Index{st: st}, nil
}

// NewMemory returns an in-memory index (no durability).
func NewMemory(opts Options) (*Index, error) {
	st, err := core.OpenMemory(opts.toCore())
	if err != nil {
		return nil, err
	}
	return &Index{st: st}, nil
}

// Append ingests one observation online. Timestamps must be strictly
// increasing. Features become searchable once their segment closes; call
// Sync to commit a batch or Finish to flush the trailing segment.
func (ix *Index) Append(t int64, v float64) error {
	return ix.st.Append(timeseries.Point{T: t, V: v})
}

// AppendPoints ingests a batch and commits it. If any point is rejected,
// everything appended since the last commit is rolled back so no partial
// batch is ever committed.
func (ix *Index) AppendPoints(pts []Point) error {
	for _, p := range pts {
		if err := ix.Append(p.Time, p.Value); err != nil {
			// The append error comes first; a failed rollback is surfaced
			// alongside it rather than dropped.
			return errors.Join(err, ix.st.Abort())
		}
	}
	return ix.Sync()
}

// Sync commits buffered features to storage in one batch (a single fsync
// for durable indexes).
func (ix *Index) Sync() error { return ix.st.Sync() }

// Abort discards everything appended since the last commit and rebuilds
// the ingest pipeline from committed state.
func (ix *Index) Abort() error { return ix.st.Abort() }

// Finish flushes the trailing partial segment; afterwards the index is
// read-only.
func (ix *Index) Finish() error { return ix.st.Finish() }

// Close finishes and releases the index.
func (ix *Index) Close() error { return ix.st.Close() }

// Drops searches for periods experiencing a drop of at least |v| value
// units (v must be negative) within a span of at most span. No true event
// is missed; every returned match contains an event with change ≤ v + 2ε.
func (ix *Index) Drops(span time.Duration, v float64) ([]Match, error) {
	return ix.search(context.Background(), feature.Drop, span, v)
}

// Jumps searches for rises of at least v (v must be positive) within span.
func (ix *Index) Jumps(span time.Duration, v float64) ([]Match, error) {
	return ix.search(context.Background(), feature.Jump, span, v)
}

// DropsContext is Drops under a request context: the search aborts with
// an error wrapping ctx.Err() as soon as the deadline expires or the
// caller cancels, checked between the bounded scan units of the search
// union, so servers can enforce per-request deadlines.
func (ix *Index) DropsContext(ctx context.Context, span time.Duration, v float64) ([]Match, error) {
	return ix.search(ctx, feature.Drop, span, v)
}

// JumpsContext is the context-aware jump search; see DropsContext.
func (ix *Index) JumpsContext(ctx context.Context, span time.Duration, v float64) ([]Match, error) {
	return ix.search(ctx, feature.Jump, span, v)
}

func (ix *Index) search(ctx context.Context, kind feature.Kind, span time.Duration, v float64) ([]Match, error) {
	T, err := spanSeconds(span)
	if err != nil {
		return nil, err
	}
	ms, err := ix.st.SearchContext(ctx, kind, T, v, sqlmini.PlanAuto)
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{
			From: Interval{Start: m.TD, End: m.TC},
			To:   Interval{Start: m.TB, End: m.TA},
		}
	}
	return out, nil
}

func spanSeconds(span time.Duration) (int64, error) {
	T := int64(span / time.Second)
	if T <= 0 {
		return 0, fmt.Errorf("segdiff: span %v is below one second", span)
	}
	return T, nil
}

// QueryTrace is the EXPLAIN ANALYZE record of one search: the executed
// plan rendered line by line — every scan unit annotated with actual
// rows, page I/O, zone-map skips, and wall time next to the planner's
// estimates — plus the aggregate runtime counters.
type QueryTrace struct {
	SQL          string        `json:"sql"`
	Mode         string        `json:"mode"`
	Wall         time.Duration `json:"wall_ns"`
	Rows         int           `json:"rows"`
	Lines        []string      `json:"lines"`
	RowsExamined int64         `json:"rows_examined"`
	RowsReturned int64         `json:"rows_returned"`
	PagesRead    uint64        `json:"pages_read"`
}

// ExplainDrops runs a drop search under EXPLAIN ANALYZE and returns its
// runtime trace. The search executes exactly as Drops would, but
// sequentially so page attribution stays per scan unit.
func (ix *Index) ExplainDrops(span time.Duration, v float64) (QueryTrace, error) {
	return ix.explain(feature.Drop, span, v)
}

// ExplainJumps is the symmetric jump-search trace; see ExplainDrops.
func (ix *Index) ExplainJumps(span time.Duration, v float64) (QueryTrace, error) {
	return ix.explain(feature.Jump, span, v)
}

func (ix *Index) explain(kind feature.Kind, span time.Duration, v float64) (QueryTrace, error) {
	T, err := spanSeconds(span)
	if err != nil {
		return QueryTrace{}, err
	}
	tr, err := ix.st.TraceSearch(kind, T, v, sqlmini.PlanAuto)
	if err != nil {
		return QueryTrace{}, err
	}
	return QueryTrace{
		SQL:          tr.SQL,
		Mode:         tr.Mode,
		Wall:         time.Duration(tr.WallNS),
		Rows:         tr.Rows,
		Lines:        tr.Lines(),
		RowsExamined: tr.RowsExaminedTotal(),
		RowsReturned: tr.RowsReturnedTotal(),
		PagesRead:    tr.PagesReadTotal(),
	}, nil
}

// Stats reports storage and compression statistics.
type Stats struct {
	Points          int     // observations ingested this session
	Segments        int     // linear segments produced this session
	CompressionRate float64 // observations per segment
	FeatureRows     int     // stored feature rows
	FeatureBytes    int64   // feature table bytes
	IndexBytes      int64   // B-tree index bytes
	Epsilon         float64
	Window          time.Duration
}

// DiskBytes is the total storage footprint (features + indexes).
func (s Stats) DiskBytes() int64 { return s.FeatureBytes + s.IndexBytes }

// Stats gathers current statistics.
func (ix *Index) Stats() (Stats, error) {
	st, err := ix.st.Stats()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		Points:          st.Points,
		Segments:        st.Segments,
		CompressionRate: st.CompressionRate,
		FeatureRows:     st.FeatureRows,
		FeatureBytes:    st.FeatureBytes,
		IndexBytes:      st.IndexBytes,
		Epsilon:         st.Epsilon,
		Window:          time.Duration(st.Window) * time.Second,
	}, nil
}

// Segment is one piece of the stored piecewise linear approximation.
type Segment struct {
	Start, End Point
}

// Segments returns the stored approximation, for plotting matches against
// the compressed signal (paper Figure 1).
func (ix *Index) Segments() ([]Segment, error) {
	segs, err := ix.st.Segments()
	if err != nil {
		return nil, err
	}
	out := make([]Segment, len(segs))
	for i, g := range segs {
		out[i] = Segment{
			Start: Point{Time: g.Ts, Value: g.Vs},
			End:   Point{Time: g.Te, Value: g.Ve},
		}
	}
	return out, nil
}

// Prune removes all indexed history strictly before the cutoff timestamp
// (retention for long-running deployments). Pruned periods are no longer
// searchable. It returns the number of feature rows removed.
func (ix *Index) Prune(before int64) (int, error) { return ix.st.Prune(before) }

// Denoise applies the paper's preprocessing: a robust local-linear
// smoother that removes isolated anomaly spikes while preserving genuine
// multi-sample drops. bandwidth is the smoothing half-window (default
// 30 min when zero). Feed the result to Append.
func Denoise(pts []Point, bandwidth time.Duration) ([]Point, error) {
	s := &timeseries.Series{}
	for _, p := range pts {
		if err := s.Append(timeseries.Point{T: p.Time, V: p.Value}); err != nil {
			return nil, err
		}
	}
	sm, err := smooth.Robust(s, smooth.Config{Bandwidth: int64(bandwidth / time.Second)})
	if err != nil {
		return nil, err
	}
	out := make([]Point, sm.Len())
	for i, p := range sm.Points() {
		out[i] = Point{Time: p.T, Value: p.V}
	}
	return out, nil
}
